// Package relation implements finite binary relations over a small universe
// of atoms, represented as bit matrices. It provides the relational-algebra
// operators used by axiomatic memory models (union, intersection, difference,
// join, transpose, transitive closure, domain/range restriction) together
// with the acyclicity and irreflexivity checks that memory-model axioms are
// built from.
//
// The universe size is bounded by 64 atoms, which comfortably covers litmus
// tests of the sizes this project synthesizes (the paper's experiments stop
// at 8 instructions). All operations are allocation-light: a Rel is a slice
// of uint64 rows, and most operators run in O(n) or O(n^2) word operations.
package relation

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxUniverse is the largest universe size a Rel supports.
const MaxUniverse = 64

// Rel is a binary relation over the universe {0, ..., N-1}.
// rows[i] has bit j set iff (i, j) is in the relation.
type Rel struct {
	n    int
	rows []uint64
}

// New returns the empty relation over a universe of n atoms.
// It panics if n is negative or exceeds MaxUniverse.
func New(n int) Rel {
	if n < 0 || n > MaxUniverse {
		panic(fmt.Sprintf("relation: universe size %d out of range [0,%d]", n, MaxUniverse))
	}
	return Rel{n: n, rows: make([]uint64, n)}
}

// FromPairs returns the relation over n atoms containing exactly the given
// (src, dst) pairs.
func FromPairs(n int, pairs ...[2]int) Rel {
	r := New(n)
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	return r
}

// Identity returns the identity relation {(i,i)} over n atoms.
func Identity(n int) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		r.rows[i] = 1 << uint(i)
	}
	return r
}

// Full returns the complete relation over n atoms.
func Full(n int) Rel {
	r := New(n)
	var all uint64
	if n == 64 {
		all = ^uint64(0)
	} else {
		all = (uint64(1) << uint(n)) - 1
	}
	for i := range r.rows {
		r.rows[i] = all
	}
	return r
}

// N returns the universe size.
func (r Rel) N() int { return r.n }

// Add inserts the pair (i, j).
func (r Rel) Add(i, j int) {
	r.check(i, j)
	r.rows[i] |= 1 << uint(j)
}

// Remove deletes the pair (i, j) if present.
func (r Rel) Remove(i, j int) {
	r.check(i, j)
	r.rows[i] &^= 1 << uint(j)
}

// Has reports whether (i, j) is in the relation.
func (r Rel) Has(i, j int) bool {
	r.check(i, j)
	return r.rows[i]&(1<<uint(j)) != 0
}

func (r Rel) check(i, j int) {
	if i < 0 || i >= r.n || j < 0 || j >= r.n {
		panic(fmt.Sprintf("relation: pair (%d,%d) out of universe [0,%d)", i, j, r.n))
	}
}

// Clone returns a deep copy of r.
func (r Rel) Clone() Rel {
	c := New(r.n)
	copy(c.rows, r.rows)
	return c
}

// IsEmpty reports whether the relation contains no pairs.
func (r Rel) IsEmpty() bool {
	for _, row := range r.rows {
		if row != 0 {
			return false
		}
	}
	return true
}

// Size returns the number of pairs in the relation.
func (r Rel) Size() int {
	total := 0
	for _, row := range r.rows {
		total += bits.OnesCount64(row)
	}
	return total
}

// Equal reports whether r and s contain exactly the same pairs over the same
// universe.
func (r Rel) Equal(s Rel) bool {
	if r.n != s.n {
		return false
	}
	for i, row := range r.rows {
		if row != s.rows[i] {
			return false
		}
	}
	return true
}

// Pairs returns all pairs in the relation in row-major order.
func (r Rel) Pairs() [][2]int {
	var out [][2]int
	for i, row := range r.rows {
		for row != 0 {
			j := bits.TrailingZeros64(row)
			out = append(out, [2]int{i, j})
			row &= row - 1
		}
	}
	return out
}

func (r Rel) mustMatch(s Rel, op string) {
	if r.n != s.n {
		panic(fmt.Sprintf("relation: %s over mismatched universes %d and %d", op, r.n, s.n))
	}
}

// Union returns r ∪ s.
func (r Rel) Union(s Rel) Rel {
	r.mustMatch(s, "union")
	out := New(r.n)
	for i := range r.rows {
		out.rows[i] = r.rows[i] | s.rows[i]
	}
	return out
}

// Intersect returns r ∩ s.
func (r Rel) Intersect(s Rel) Rel {
	r.mustMatch(s, "intersect")
	out := New(r.n)
	for i := range r.rows {
		out.rows[i] = r.rows[i] & s.rows[i]
	}
	return out
}

// Minus returns r \ s.
func (r Rel) Minus(s Rel) Rel {
	r.mustMatch(s, "minus")
	out := New(r.n)
	for i := range r.rows {
		out.rows[i] = r.rows[i] &^ s.rows[i]
	}
	return out
}

// Join returns the relational join r;s = {(i,k) | ∃j: (i,j)∈r ∧ (j,k)∈s}.
func (r Rel) Join(s Rel) Rel {
	r.mustMatch(s, "join")
	out := New(r.n)
	for i, row := range r.rows {
		var acc uint64
		for row != 0 {
			j := bits.TrailingZeros64(row)
			acc |= s.rows[j]
			row &= row - 1
		}
		out.rows[i] = acc
	}
	return out
}

// In-place variants. The allocating operators above return a fresh Rel
// per call, which is the right shape for model definitions but allocates
// in the synthesis engine's explore hot path, where the same handful of
// derived relations is recomputed for every (execution, sc-order,
// relaxation) triple. These variants write into an existing Rel instead,
// letting callers reuse pooled scratch buffers.

// Clear removes every pair, keeping the universe.
func (r Rel) Clear() {
	for i := range r.rows {
		r.rows[i] = 0
	}
}

// CopyFrom overwrites r with the pairs of s.
func (r Rel) CopyFrom(s Rel) {
	r.mustMatch(s, "copy")
	copy(r.rows, s.rows)
}

// UnionWith adds every pair of s to r in place (r ∪= s).
func (r Rel) UnionWith(s Rel) {
	r.mustMatch(s, "union")
	for i := range r.rows {
		r.rows[i] |= s.rows[i]
	}
}

// IntersectWith removes from r every pair not in s (r ∩= s).
func (r Rel) IntersectWith(s Rel) {
	r.mustMatch(s, "intersect")
	for i := range r.rows {
		r.rows[i] &= s.rows[i]
	}
}

// MinusWith removes every pair of s from r (r \= s).
func (r Rel) MinusWith(s Rel) {
	r.mustMatch(s, "minus")
	for i := range r.rows {
		r.rows[i] &^= s.rows[i]
	}
}

// JoinInto computes r;s into dst. dst may alias r but must not alias s.
func (r Rel) JoinInto(s, dst Rel) {
	r.mustMatch(s, "join")
	r.mustMatch(dst, "join")
	for i, row := range r.rows {
		var acc uint64
		for row != 0 {
			j := bits.TrailingZeros64(row)
			acc |= s.rows[j]
			row &= row - 1
		}
		dst.rows[i] = acc
	}
}

// CloseIn replaces r with its transitive closure in place.
func (r Rel) CloseIn() {
	for k := 0; k < r.n; k++ {
		kbit := uint64(1) << uint(k)
		for i := range r.rows {
			if r.rows[i]&kbit != 0 {
				r.rows[i] |= r.rows[k]
			}
		}
	}
}

// ReflexiveCloseIn replaces r with iden ∪ ^r in place.
func (r Rel) ReflexiveCloseIn() {
	r.CloseIn()
	for i := 0; i < r.n; i++ {
		r.rows[i] |= 1 << uint(i)
	}
}

// RestrictIn removes in place every pair whose source is outside dom or
// whose target is outside rng.
func (r Rel) RestrictIn(dom, rng Set) {
	r.mustMatchSet(dom, "restrict")
	r.mustMatchSet(rng, "restrict")
	for i := range r.rows {
		if !dom.Has(i) {
			r.rows[i] = 0
		} else {
			r.rows[i] &= uint64(rng)
		}
	}
}

// UnionRow adds an edge from i to every atom of s in place.
func (r Rel) UnionRow(i int, s Set) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("relation: atom %d out of universe [0,%d)", i, r.n))
	}
	r.mustMatchSet(s, "row union")
	r.rows[i] |= uint64(s)
}

// Transpose returns the inverse relation ~r.
func (r Rel) Transpose() Rel {
	out := New(r.n)
	for i, row := range r.rows {
		for row != 0 {
			j := bits.TrailingZeros64(row)
			out.rows[j] |= 1 << uint(i)
			row &= row - 1
		}
	}
	return out
}

// Closure returns the transitive closure ^r (one or more steps).
// Warshall over bit rows: if (i,k) then fold in row k.
func (r Rel) Closure() Rel {
	out := r.Clone()
	out.CloseIn()
	return out
}

// ReflexiveClosure returns *r = iden ∪ ^r (zero or more steps).
func (r Rel) ReflexiveClosure() Rel {
	out := r.Closure()
	for i := 0; i < out.n; i++ {
		out.rows[i] |= 1 << uint(i)
	}
	return out
}

// OptStep returns r? = iden ∪ r (zero or one step).
func (r Rel) OptStep() Rel {
	out := r.Clone()
	for i := 0; i < out.n; i++ {
		out.rows[i] |= 1 << uint(i)
	}
	return out
}

// RestrictDomain returns dom <: r — pairs of r whose source is in dom.
func (r Rel) RestrictDomain(dom Set) Rel {
	r.mustMatchSet(dom, "domain restriction")
	out := New(r.n)
	m := uint64(dom)
	for i := range r.rows {
		if m&(1<<uint(i)) != 0 {
			out.rows[i] = r.rows[i]
		}
	}
	return out
}

// RestrictRange returns r :> rng — pairs of r whose target is in rng.
func (r Rel) RestrictRange(rng Set) Rel {
	r.mustMatchSet(rng, "range restriction")
	out := New(r.n)
	for i := range r.rows {
		out.rows[i] = r.rows[i] & uint64(rng)
	}
	return out
}

// Restrict returns dom <: r :> rng.
func (r Rel) Restrict(dom, rng Set) Rel {
	return r.RestrictDomain(dom).RestrictRange(rng)
}

func (r Rel) mustMatchSet(s Set, op string) {
	if r.n < 64 && uint64(s)>>uint(r.n) != 0 {
		panic(fmt.Sprintf("relation: %s with set outside universe of %d", op, r.n))
	}
}

// Irreflexive reports whether no pair (i,i) is in the relation.
func (r Rel) Irreflexive() bool {
	for i, row := range r.rows {
		if row&(1<<uint(i)) != 0 {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation, viewed as a directed graph, has no
// cycle (equivalently, its transitive closure is irreflexive).
func (r Rel) Acyclic() bool {
	// Iterative DFS with colors; avoids the O(n^3) closure when a cycle
	// exists early. Fixed-size backing arrays keep the check off the heap
	// (it is the single most-called predicate in axiom evaluation).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	var colorArr [MaxUniverse]uint8
	color := colorArr[:r.n]
	type frame struct {
		node int
		rest uint64
	}
	var stackArr [MaxUniverse]frame
	stack := stackArr[:0]
	for start := 0; start < r.n; start++ {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack, frame{start, r.rows[start]})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.rest == 0 {
				color[top.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			j := bits.TrailingZeros64(top.rest)
			top.rest &= top.rest - 1
			switch color[j] {
			case gray:
				return false
			case white:
				color[j] = gray
				stack = append(stack, frame{j, r.rows[j]})
			}
		}
	}
	return true
}

// Transitive reports whether r;r ⊆ r.
func (r Rel) Transitive() bool {
	return r.Join(r).Minus(r).IsEmpty()
}

// SubsetOf reports whether every pair of r is in s.
func (r Rel) SubsetOf(s Rel) bool {
	r.mustMatch(s, "subset")
	for i := range r.rows {
		if r.rows[i]&^s.rows[i] != 0 {
			return false
		}
	}
	return true
}

// Domain returns the set of atoms with at least one outgoing edge.
func (r Rel) Domain() Set {
	var s Set
	for i, row := range r.rows {
		if row != 0 {
			s = s.Add(i)
		}
	}
	return s
}

// Range returns the set of atoms with at least one incoming edge.
func (r Rel) Range() Set {
	var acc uint64
	for _, row := range r.rows {
		acc |= row
	}
	return Set(acc)
}

// Image returns the set of atoms reachable in one step from any atom in s.
func (r Rel) Image(s Set) Set {
	var acc uint64
	m := uint64(s)
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		if i < r.n {
			acc |= r.rows[i]
		}
	}
	return Set(acc)
}

// Successors returns the set of atoms j with (i, j) in r.
func (r Rel) Successors(i int) Set {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("relation: atom %d out of universe [0,%d)", i, r.n))
	}
	return Set(r.rows[i])
}

// String renders the relation as its sorted pair list, e.g. "{(0,1),(2,0)}".
func (r Rel) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, p := range r.Pairs() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "(%d,%d)", p[0], p[1])
	}
	b.WriteByte('}')
	return b.String()
}
