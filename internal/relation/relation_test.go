package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	r := New(5)
	if !r.IsEmpty() {
		t.Fatalf("New(5) not empty: %v", r)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d, want 0", r.Size())
	}
	if r.N() != 5 {
		t.Fatalf("N = %d, want 5", r.N())
	}
}

func TestAddHasRemove(t *testing.T) {
	r := New(4)
	r.Add(1, 2)
	if !r.Has(1, 2) {
		t.Fatal("Has(1,2) = false after Add")
	}
	if r.Has(2, 1) {
		t.Fatal("Has(2,1) = true, want false")
	}
	r.Remove(1, 2)
	if r.Has(1, 2) {
		t.Fatal("Has(1,2) = true after Remove")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(65) },
		func() { New(-1) },
		func() { New(3).Add(3, 0) },
		func() { New(3).Add(0, -1) },
		func() { New(3).Has(5, 0) },
		func() { SetOf(64) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	a := FromPairs(4, [2]int{0, 1}, [2]int{1, 2})
	b := FromPairs(4, [2]int{1, 2}, [2]int{2, 3})
	if got := a.Union(b).Size(); got != 3 {
		t.Errorf("union size = %d, want 3", got)
	}
	if got := a.Intersect(b); !got.Equal(FromPairs(4, [2]int{1, 2})) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(FromPairs(4, [2]int{0, 1})) {
		t.Errorf("minus = %v", got)
	}
}

func TestJoin(t *testing.T) {
	a := FromPairs(4, [2]int{0, 1}, [2]int{1, 2})
	b := FromPairs(4, [2]int{1, 3}, [2]int{2, 0})
	want := FromPairs(4, [2]int{0, 3}, [2]int{1, 0})
	if got := a.Join(b); !got.Equal(want) {
		t.Errorf("join = %v, want %v", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := FromPairs(4, [2]int{0, 1}, [2]int{2, 3})
	want := FromPairs(4, [2]int{1, 0}, [2]int{3, 2})
	if got := a.Transpose(); !got.Equal(want) {
		t.Errorf("transpose = %v, want %v", got, want)
	}
}

func TestClosureChain(t *testing.T) {
	a := FromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	c := a.Closure()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !c.Has(p[0], p[1]) {
			t.Errorf("closure missing (%d,%d)", p[0], p[1])
		}
	}
	if c.Has(3, 0) {
		t.Error("closure has spurious (3,0)")
	}
	if !c.Transitive() {
		t.Error("closure not transitive")
	}
}

func TestClosureCycle(t *testing.T) {
	a := FromPairs(3, [2]int{0, 1}, [2]int{1, 0})
	c := a.Closure()
	if !c.Has(0, 0) || !c.Has(1, 1) {
		t.Errorf("cycle closure missing self loops: %v", c)
	}
	if c.Has(2, 2) {
		t.Error("isolated node gained self loop")
	}
}

func TestAcyclic(t *testing.T) {
	if !FromPairs(4, [2]int{0, 1}, [2]int{1, 2}).Acyclic() {
		t.Error("chain reported cyclic")
	}
	if FromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}).Acyclic() {
		t.Error("3-cycle reported acyclic")
	}
	if FromPairs(2, [2]int{1, 1}).Acyclic() {
		t.Error("self-loop reported acyclic")
	}
	if !New(0).Acyclic() {
		t.Error("empty universe reported cyclic")
	}
}

func TestIrreflexive(t *testing.T) {
	if !FromPairs(3, [2]int{0, 1}).Irreflexive() {
		t.Error("irreflexive relation misreported")
	}
	if FromPairs(3, [2]int{1, 1}).Irreflexive() {
		t.Error("reflexive pair missed")
	}
}

func TestRestrict(t *testing.T) {
	a := FromPairs(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	got := a.Restrict(SetOf(0, 2), SetOf(1, 3))
	want := FromPairs(4, [2]int{0, 1}, [2]int{2, 3})
	if !got.Equal(want) {
		t.Errorf("restrict = %v, want %v", got, want)
	}
}

func TestCrossAndIdentityOn(t *testing.T) {
	c := Cross(4, SetOf(0, 1), SetOf(2, 3))
	if c.Size() != 4 || !c.Has(0, 2) || !c.Has(1, 3) || c.Has(2, 0) {
		t.Errorf("cross = %v", c)
	}
	id := IdentityOn(4, SetOf(1, 3))
	if id.Size() != 2 || !id.Has(1, 1) || !id.Has(3, 3) || id.Has(0, 0) {
		t.Errorf("identityOn = %v", id)
	}
}

func TestDomainRangeImage(t *testing.T) {
	a := FromPairs(5, [2]int{0, 1}, [2]int{0, 2}, [2]int{3, 4})
	if got := a.Domain(); got != SetOf(0, 3) {
		t.Errorf("domain = %v", got)
	}
	if got := a.Range(); got != SetOf(1, 2, 4) {
		t.Errorf("range = %v", got)
	}
	if got := a.Image(SetOf(0)); got != SetOf(1, 2) {
		t.Errorf("image = %v", got)
	}
}

func TestOptStepAndReflexiveClosure(t *testing.T) {
	a := FromPairs(3, [2]int{0, 1}, [2]int{1, 2})
	opt := a.OptStep()
	if !opt.Has(0, 0) || !opt.Has(0, 1) || opt.Has(0, 2) {
		t.Errorf("optstep = %v", opt)
	}
	rc := a.ReflexiveClosure()
	if !rc.Has(0, 2) || !rc.Has(2, 2) {
		t.Errorf("reflexive closure = %v", rc)
	}
}

func TestString(t *testing.T) {
	a := FromPairs(3, [2]int{2, 0}, [2]int{0, 1})
	if got := a.String(); got != "{(0,1),(2,0)}" {
		t.Errorf("String = %q", got)
	}
	if got := SetOf(1, 3).String(); got != "{1,3}" {
		t.Errorf("Set.String = %q", got)
	}
}

// randomRel draws a relation over n atoms with the given edge probability.
func randomRel(rng *rand.Rand, n int, p float64) Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				r.Add(i, j)
			}
		}
	}
	return r
}

// TestQuickInPlaceMatchesAllocating: every in-place variant must agree
// with its allocating counterpart on random relations.
func TestQuickInPlaceMatchesAllocating(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 10, 0.3)
		b := randomRel(rng, 10, 0.3)
		dst := New(10)

		dst.CopyFrom(a)
		dst.UnionWith(b)
		if !dst.Equal(a.Union(b)) {
			return false
		}
		dst.CopyFrom(a)
		dst.IntersectWith(b)
		if !dst.Equal(a.Intersect(b)) {
			return false
		}
		dst.CopyFrom(a)
		dst.MinusWith(b)
		if !dst.Equal(a.Minus(b)) {
			return false
		}
		a.JoinInto(b, dst)
		if !dst.Equal(a.Join(b)) {
			return false
		}
		// dst may alias the receiver.
		dst.CopyFrom(a)
		dst.JoinInto(b, dst)
		if !dst.Equal(a.Join(b)) {
			return false
		}
		dst.CopyFrom(a)
		dst.CloseIn()
		if !dst.Equal(a.Closure()) {
			return false
		}
		dst.CopyFrom(a)
		dst.ReflexiveCloseIn()
		if !dst.Equal(a.ReflexiveClosure()) {
			return false
		}
		dom := Set(rng.Uint64()).Intersect(UniverseSet(10))
		rng2 := Set(rng.Uint64()).Intersect(UniverseSet(10))
		dst.CopyFrom(a)
		dst.RestrictIn(dom, rng2)
		if !dst.Equal(a.Restrict(dom, rng2)) {
			return false
		}
		dst.Clear()
		return dst.IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionRow(t *testing.T) {
	r := New(5)
	r.Add(0, 1)
	var s Set
	s = s.Add(2).Add(4)
	r.UnionRow(0, s)
	r.UnionRow(3, s)
	want := New(5)
	want.Add(0, 1)
	want.Add(0, 2)
	want.Add(0, 4)
	want.Add(3, 2)
	want.Add(3, 4)
	if !r.Equal(want) {
		t.Errorf("UnionRow result %v, want %v", r, want)
	}
}

func TestQuickClosureIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := randomRel(rand.New(rand.NewSource(seed^rng.Int63())), 10, 0.2)
		c := r.Closure()
		return c.Closure().Equal(c) && c.Transitive() && r.SubsetOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAcyclicMatchesClosureIrreflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRel(rand.New(rand.NewSource(seed)), 9, 0.15)
		return r.Acyclic() == r.Closure().Irreflexive()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 8, 0.3)
		b := randomRel(rng, 8, 0.3)
		c := randomRel(rng, 8, 0.3)
		return a.Join(b).Join(c).Equal(a.Join(b.Join(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRel(rand.New(rand.NewSource(seed)), 12, 0.25)
		return r.Transpose().Transpose().Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 8, 0.4)
		b := randomRel(rng, 8, 0.4)
		full := Full(8)
		// full \ (a ∪ b) == (full \ a) ∩ (full \ b)
		lhs := full.Minus(a.Union(b))
		rhs := full.Minus(a).Intersect(full.Minus(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 8, 0.3)
		b := randomRel(rng, 8, 0.3)
		c := randomRel(rng, 8, 0.3)
		return a.Join(b.Union(c)).Equal(a.Join(b).Union(a.Join(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeJoin(t *testing.T) {
	// ~(a;b) == ~b;~a
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 8, 0.3)
		b := randomRel(rng, 8, 0.3)
		return a.Join(b).Transpose().Equal(b.Transpose().Join(a.Transpose()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPairsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRel(rand.New(rand.NewSource(seed)), 10, 0.2)
		return FromPairs(10, r.Pairs()...).Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFull(t *testing.T) {
	f := Full(3)
	if f.Size() != 9 {
		t.Errorf("Full(3) size = %d, want 9", f.Size())
	}
	f64 := Full(64)
	if f64.Size() != 64*64 {
		t.Errorf("Full(64) size = %d", f64.Size())
	}
}

func TestUniverseSet(t *testing.T) {
	if UniverseSet(0) != 0 {
		t.Error("UniverseSet(0) not empty")
	}
	if UniverseSet(3) != SetOf(0, 1, 2) {
		t.Errorf("UniverseSet(3) = %v", UniverseSet(3))
	}
	if UniverseSet(64).Size() != 64 {
		t.Errorf("UniverseSet(64) size = %d", UniverseSet(64).Size())
	}
}

func TestSetOps(t *testing.T) {
	s := SetOf(1, 2, 5)
	if !s.Has(2) || s.Has(3) {
		t.Error("Has wrong")
	}
	if s.Remove(2) != SetOf(1, 5) {
		t.Error("Remove wrong")
	}
	if s.Union(SetOf(3)) != SetOf(1, 2, 3, 5) {
		t.Error("Union wrong")
	}
	if s.Intersect(SetOf(2, 3)) != SetOf(2) {
		t.Error("Intersect wrong")
	}
	if s.Minus(SetOf(1)) != SetOf(2, 5) {
		t.Error("Minus wrong")
	}
	if got := s.Members(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("Members = %v", got)
	}
}
