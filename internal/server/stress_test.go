package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// stressJobStatus decodes a JobStatus whose Result is a StressRunResult.
type stressJobStatus struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Kind     string          `json:"kind"`
	Stress   *StressParams   `json:"stress"`
	Progress *JobProgress    `json:"progress"`
	Result   json.RawMessage `json:"result"`
	Error    string          `json:"error"`
}

func postRun(t *testing.T, url, digest, body string) (*http.Response, stressJobStatus) {
	t.Helper()
	resp, err := http.Post(url+"/v1/suites/"+digest+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stressJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode == http.StatusAccepted {
		t.Fatal(err)
	}
	return resp, st
}

func awaitJob(t *testing.T, url, id string) stressJobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st stressJobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobRunning {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("job did not complete in time")
	return stressJobStatus{}
}

// TestSuiteRunEndpoint is the acceptance flow for native execution: store
// a synthesized TSO suite, stress-run it through the async job API, and
// check the observed-outcome histograms come back non-empty and fully
// model-explained (atomic mode cannot exhibit forbidden outcomes).
func TestSuiteRunEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes tso at bound 4 and stress-executes it")
	}
	_, ts := newTestServer(t, t.TempDir())
	resp1, _ := postSynthesize(t, ts.URL, `{"model":"tso","max_events":4}`)
	digest := resp1.Header.Get("X-Memsynth-Digest")

	resp, st := postRun(t, ts.URL, digest, `{"iterations":150,"batch":64,"seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST run: %d", resp.StatusCode)
	}
	if st.Kind != JobKindStress || st.Stress == nil {
		t.Fatalf("202 job status missing stress manifest: %+v", st)
	}
	if st.Stress.Seed != 5 || st.Stress.Mode != "atomic" || st.Stress.Axiom != "union" {
		t.Fatalf("stress manifest = %+v", st.Stress)
	}

	final := awaitJob(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("job state %q (error %q)", final.State, final.Error)
	}
	var res StressRunResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.TestsRun == 0 || res.Iterations == 0 || len(res.Reports) == 0 {
		t.Fatalf("empty stress result: %+v", res)
	}
	if res.Seed != 5 || res.Mode != "atomic" || res.Digest != digest {
		t.Fatalf("result manifest wrong: %+v", res)
	}
	if res.Unexplained != 0 || res.Violations != 0 {
		t.Fatalf("atomic run reported forbidden outcomes: %+v", res)
	}
	for _, rep := range res.Reports {
		if len(rep.Outcomes) == 0 {
			t.Fatalf("%s: empty histogram", rep.Test)
		}
		if !rep.Checked {
			t.Fatalf("%s: not cross-checked", rep.Test)
		}
	}

	if runs := metricValue(t, ts.URL, "stress_runs"); runs != 1 {
		t.Errorf("stress_runs = %d, want 1", runs)
	}
	if iters := metricValue(t, ts.URL, "stress_iterations"); iters != res.Iterations {
		t.Errorf("stress_iterations = %d, want %d", iters, res.Iterations)
	}
	if un := metricValue(t, ts.URL, "stress_unexplained_outcomes"); un != 0 {
		t.Errorf("stress_unexplained_outcomes = %d, want 0", un)
	}

	// A zero seed is normalized before the 202 so the manifest replays.
	resp2, st2 := postRun(t, ts.URL, digest, `{"iterations":32}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST run: %d", resp2.StatusCode)
	}
	if st2.Stress == nil || st2.Stress.Seed == 0 {
		t.Fatalf("zero seed not normalized in job manifest: %+v", st2.Stress)
	}
	awaitJob(t, ts.URL, st2.ID)
}

func TestSuiteRunErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes sc at bound 3")
	}
	_, ts := newTestServer(t, t.TempDir())
	resp1, _ := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3}`)
	digest := resp1.Header.Get("X-Memsynth-Digest")

	resp, _ := postRun(t, ts.URL, "deadbeef", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest: %d, want 404", resp.StatusCode)
	}
	resp, _ = postRun(t, ts.URL, digest, `{"mode":"bogus"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad mode: %d, want 422", resp.StatusCode)
	}
	resp, _ = postRun(t, ts.URL, digest, `{"axiom":"nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad axiom: %d, want 404", resp.StatusCode)
	}
	resp, _ = postRun(t, ts.URL, digest, `{"iterations":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative iterations: %d, want 400", resp.StatusCode)
	}
}

// TestSuiteRenderEndpoint serves a stored suite in each dialect the model
// supports, including the Go target that mirrors the stress executor.
func TestSuiteRenderEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes tso at bound 4")
	}
	_, ts := newTestServer(t, t.TempDir())
	resp1, _ := postSynthesize(t, ts.URL, `{"model":"tso","max_events":4}`)
	digest := resp1.Header.Get("X-Memsynth-Digest")

	get := func(query string) (*http.Response, string) {
		resp, err := http.Get(ts.URL + "/v1/suites/" + digest + "/render" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("?target=go")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render go: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Memsynth-Target") != "go" {
		t.Errorf("target header = %q", resp.Header.Get("X-Memsynth-Target"))
	}
	if !strings.Contains(body, "atomic.LoadInt64") || !strings.Contains(body, "exists (") {
		t.Errorf("go rendering missing atomics or exists clause:\n%s", body)
	}

	// No target: tso's conventional dialect is x86.
	resp, body = get("")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Memsynth-Target") != "x86" {
		t.Fatalf("default render: %d target=%q", resp.StatusCode, resp.Header.Get("X-Memsynth-Target"))
	}
	if !strings.Contains(body, "MFENCE") && !strings.Contains(body, "MOV") {
		t.Errorf("x86 rendering looks wrong:\n%s", body)
	}

	resp, _ = get("?target=mips")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad target: %d, want 400", resp.StatusCode)
	}
	resp, _ = get("?axiom=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad axiom: %d, want 404", resp.StatusCode)
	}
}
