package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// defA and defB share a name but mean different models; defAReformatted
// is token-identical to defA (comments and whitespace only).
const (
	defA = `model mymodel
acyclic po | rf | co | fr as total
ops R W
`
	defAReformatted = `(* same tokens as defA *)
model mymodel

acyclic   po | rf | co | fr   as total // sc-like
ops R W
`
	defB = `model mymodel
acyclic po-loc | rf | co | fr as total
ops R W
`
)

func postModel(t testing.TB, url, src string) (int, modelInfo) {
	t.Helper()
	resp, err := http.Post(url+"/v1/models", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info modelInfo
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(data, &info); err != nil {
			t.Fatalf("bad register response %q: %v", data, err)
		}
	}
	return resp.StatusCode, info
}

// TestRegisterSynthesizeEvictResynthesize is the satellite acceptance
// flow: register a model, synthesize it, evict the suite, re-synthesize —
// the store is hit by definition hash, so the digest is stable across the
// eviction and across a formatting-only re-registration.
func TestRegisterSynthesizeEvictResynthesize(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	status, info := postModel(t, ts.URL, defA)
	if status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	if info.Name != "mymodel" || info.Source != "cat" || len(info.Digest) != 64 {
		t.Fatalf("register response: %+v", info)
	}
	if len(info.Axioms) != 1 || info.Axioms[0] != "total" {
		t.Fatalf("register axioms: %v", info.Axioms)
	}

	// /v1/models lists the registration with its provenance, and
	// built-ins as such.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listed []modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := make(map[string]modelInfo)
	for _, mi := range listed {
		byName[mi.Name] = mi
	}
	if got := byName["mymodel"]; got.Source != "cat" || got.Digest != info.Digest {
		t.Errorf("listed mymodel: %+v", got)
	}
	if got := byName["sc"]; got.Source != "builtin" || got.Digest != "" {
		t.Errorf("listed sc: %+v", got)
	}

	body := `{"model":"mymodel","max_events":3}`
	resp1, data1 := postSynthesize(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d: %s", resp1.StatusCode, data1)
	}
	digest := resp1.Header.Get("X-Memsynth-Digest")
	if digest == "" {
		t.Fatal("no digest header")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/suites/"+digest, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("evict: %d", dresp.StatusCode)
	}

	// Re-register a formatting-only variant: same normalized definition,
	// same digest; re-synthesis lands on the same content address.
	if status, info2 := postModel(t, ts.URL, defAReformatted); status != http.StatusCreated || info2.Digest != info.Digest {
		t.Fatalf("re-register: status %d digest %q (want %q)", status, info2.Digest, info.Digest)
	}
	resp2, data2 := postSynthesize(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-synthesize: %d: %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get("X-Memsynth-Digest"); got != digest {
		t.Errorf("digest after evict+re-register: %q, want %q", got, digest)
	}
	if cached := resp2.Header.Get("X-Memsynth-Cached"); cached != "false" {
		t.Errorf("re-synthesize after evict cached=%s, want false", cached)
	}

	// Third request is a pure store hit by definition hash.
	resp3, _ := postSynthesize(t, ts.URL, body)
	if cached := resp3.Header.Get("X-Memsynth-Cached"); cached != "true" {
		t.Errorf("third synthesize cached=%s, want true", cached)
	}
}

// TestSameNameDistinctDefinitions: two definitions named "mymodel" with
// different bodies must get distinct model digests AND distinct suite
// digests — neither shadows the other's cache entries.
func TestSameNameDistinctDefinitions(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	body := `{"model":"mymodel","max_events":3}`

	_, infoA := postModel(t, ts.URL, defA)
	respA, _ := postSynthesize(t, ts.URL, body)
	suiteA := respA.Header.Get("X-Memsynth-Digest")

	_, infoB := postModel(t, ts.URL, defB)
	if infoA.Digest == infoB.Digest {
		t.Fatal("different bodies, same model digest")
	}
	respB, _ := postSynthesize(t, ts.URL, body)
	suiteB := respB.Header.Get("X-Memsynth-Digest")
	if suiteA == suiteB {
		t.Fatal("different definitions share a suite digest")
	}
	if cached := respB.Header.Get("X-Memsynth-Cached"); cached != "false" {
		t.Errorf("definition B synthesize cached=%s, want false", cached)
	}

	// Both suites coexist in the store; each manifest records the
	// definition it was synthesized from.
	for digest, want := range map[string]string{suiteA: infoA.Digest, suiteB: infoB.Digest} {
		resp, err := http.Get(ts.URL + "/v1/suites/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		var manifest struct {
			ModelSource string `json:"model_source"`
			ModelDigest string `json:"model_digest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&manifest); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if manifest.ModelSource != "cat" || manifest.ModelDigest != want {
			t.Errorf("suite %s manifest provenance: %s/%s, want cat/%s",
				digest[:12], manifest.ModelSource, manifest.ModelDigest, want)
		}
	}

	// Detect over A's suite now conflicts: the registered "mymodel" is
	// definition B.
	resp, err := http.Get(ts.URL + "/v1/suites/" + suiteA + "/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("detect against replaced definition: %d, want %d", resp.StatusCode, http.StatusConflict)
	}
}

// TestRegisterModelErrors: malformed definitions are rejected with a
// positioned message, and unknown model names list what is available.
func TestRegisterModelErrors(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	resp, err := http.Post(ts.URL+"/v1/models", "text/plain",
		strings.NewReader("model broken\nacyclic po |\nops R\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad definition: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "line 2:") {
		t.Errorf("error not positioned: %s", data)
	}

	sresp, sdata := postSynthesize(t, ts.URL, `{"model":"nope","max_events":3}`)
	if sresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model: status %d", sresp.StatusCode)
	}
	for _, want := range []string{"available:", "sc", "tso"} {
		if !strings.Contains(string(sdata), want) {
			t.Errorf("unknown-model error %q does not mention %q", sdata, want)
		}
	}
}

// TestRegisterModelWarnings: warning-severity lint findings do not block
// registration — they ride along in the 201 response and bump the
// model_lint_warnings counter.
func TestRegisterModelWarnings(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	status, info := postModel(t, ts.URL, "model warny\nlet dead = po\nacyclic po | rf | co | fr as total\nops R W\n")
	if status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	if len(info.Warnings) != 1 || info.Warnings[0].Code != "unused-let" || info.Warnings[0].Line != 2 {
		t.Fatalf("register warnings: %+v", info.Warnings)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var counters map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&counters); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := string(counters["model_lint_warnings"]); got != "1" {
		t.Errorf("model_lint_warnings = %s, want 1", got)
	}

	// A clean registration carries no warnings field at all.
	if _, clean := postModel(t, ts.URL, defA); len(clean.Warnings) != 0 {
		t.Errorf("clean registration warnings: %+v", clean.Warnings)
	}
}

// TestRegisterModelLintRejection: a definition that compiles but carries an
// error-severity finding (a non-terminating demotion ladder) is rejected
// with 422 and the findings attached.
func TestRegisterModelLintRejection(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	src := "model cyc\nacyclic po as ax\nops R W R.acq\ndemote R.acq -> R.acq\nrelax DMO\n"
	resp, err := http.Post(ts.URL+"/v1/models", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cyclic demote: status %d: %s", resp.StatusCode, data)
	}
	var rej struct {
		Error    string `json:"error"`
		Findings []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			Line     int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &rej); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej.Error, "cyclic-demote") {
		t.Errorf("rejection error: %q", rej.Error)
	}
	found := false
	for _, f := range rej.Findings {
		if f.Code == "cyclic-demote" && f.Severity == "error" && f.Line == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("rejection findings: %+v", rej.Findings)
	}

	// The model must not have been registered.
	if sresp, _ := postSynthesize(t, ts.URL, `{"model":"cyc","max_events":3}`); sresp.StatusCode != http.StatusBadRequest {
		t.Errorf("rejected model is resolvable: status %d", sresp.StatusCode)
	}
}

// TestModelLintEndpoint: the dry-run endpoint returns the full report with
// 200 even for uncompilable sources, honors ?bound=, and registers
// nothing.
func TestModelLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	lint := func(t *testing.T, path, src string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var report map[string]json.RawMessage
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &report); err != nil {
				t.Fatalf("bad lint response %q: %v", data, err)
			}
		}
		return resp.StatusCode, report
	}

	// Uncompilable: still 200, with the parse error as a finding.
	status, report := lint(t, "/v1/models/lint", "model broken\nacyclic po |\nops R\n")
	if status != http.StatusOK {
		t.Fatalf("lint of broken definition: status %d", status)
	}
	if !strings.Contains(string(report["findings"]), "parse-error") {
		t.Errorf("broken definition findings: %s", report["findings"])
	}

	// Clean definition at an explicit bound.
	status, report = lint(t, "/v1/models/lint?bound=3", defA)
	if status != http.StatusOK || string(report["bound"]) != "3" || string(report["tier2"]) != "true" {
		t.Fatalf("lint at bound 3: status %d report %v", status, report)
	}

	if status, _ := lint(t, "/v1/models/lint?bound=zero", defA); status != http.StatusBadRequest {
		t.Errorf("bad bound accepted: status %d", status)
	}

	// Dry run: the linted model name is not registered.
	if sresp, _ := postSynthesize(t, ts.URL, `{"model":"mymodel","max_events":3}`); sresp.StatusCode != http.StatusBadRequest {
		t.Errorf("lint registered the model: status %d", sresp.StatusCode)
	}
}
