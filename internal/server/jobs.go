package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"memsynth/internal/cluster"
	"memsynth/internal/memmodel"
	"memsynth/internal/synth"
)

// Job states.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// maxJobHistory bounds the completed-job records kept for status queries;
// the oldest completed jobs are pruned first (running jobs are never
// pruned).
const maxJobHistory = 256

// JobProgress is the live counter snapshot of a running job. Synthesis
// jobs fill the engine counters; stress jobs fill the stress fields.
type JobProgress struct {
	Phase       string `json:"phase"`
	Size        int    `json:"size,omitempty"`
	ProgramsRaw int    `json:"programs_raw,omitempty"`
	Programs    int    `json:"programs,omitempty"`
	Executions  int    `json:"executions,omitempty"`
	Entries     int    `json:"entries,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	// Stress-job counters: tests executed / suite size, iterations run,
	// and iterations whose outcome the model forbids.
	TestsRun    int   `json:"tests_run,omitempty"`
	TestsTotal  int   `json:"tests_total,omitempty"`
	Iterations  int64 `json:"iterations,omitempty"`
	Unexplained int64 `json:"unexplained,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} response (also the 202 body of an
// async synthesize or suite run).
type JobStatus struct {
	ID        string    `json:"id"`
	Digest    string    `json:"digest"`
	Model     string    `json:"model"`
	State     string    `json:"state"`
	CreatedAt time.Time `json:"created_at"`
	// Kind distinguishes job flavors: "synthesize" (default, omitted for
	// compatibility) or "stress".
	Kind   string `json:"kind,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// Stress is the run manifest of a stress job: the exact parameters
	// (including the normalized seed) that replay it.
	Stress   *StressParams `json:"stress,omitempty"`
	Progress *JobProgress  `json:"progress,omitempty"`
	// Result carries a completed stress job's report (synthesis results
	// live in the store under Digest instead).
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// job is one async request. A synthesis job's result is not kept on the
// job (a done job's suite lives in the store under the job's digest); a
// stress job's report is kept in result.
type job struct {
	id      string
	digest  string
	model   string
	kind    string
	created time.Time
	done    chan struct{}
	stress  *StressParams

	mu         sync.Mutex
	state      string
	cached     bool
	errMsg     string
	flight     *flight // progress source while running; nil before attach
	progressFn func() *JobProgress
	result     any
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Digest:    j.digest,
		Model:     j.model,
		State:     j.state,
		Kind:      j.kind,
		CreatedAt: j.created,
		Cached:    j.cached,
		Stress:    j.stress,
		Result:    j.result,
		Error:     j.errMsg,
	}
	if j.state != JobRunning {
		return st
	}
	switch {
	case j.progressFn != nil:
		st.Progress = j.progressFn()
	case j.flight != nil:
		ev := j.flight.snapshot()
		if ev.Phase != "" {
			st.Progress = &JobProgress{
				Phase:       ev.Phase,
				Size:        ev.Size,
				ProgramsRaw: ev.ProgramsRaw,
				Programs:    ev.Programs,
				Executions:  ev.Executions,
				Entries:     ev.Entries,
				ElapsedMS:   ev.Elapsed.Milliseconds(),
			}
		}
	}
	return st
}

// jobSet is the job registry plus the drain barrier.
type jobSet struct {
	mu   sync.Mutex
	m    map[string]*job
	wg   sync.WaitGroup
	seen []string // insertion order, for history pruning
}

func newJobSet() *jobSet { return &jobSet{m: make(map[string]*job)} }

func (js *jobSet) add(j *job) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.m[j.id] = j
	js.seen = append(js.seen, j.id)
	// Prune oldest completed jobs beyond the history bound.
	if len(js.seen) > maxJobHistory {
		kept := js.seen[:0]
		excess := len(js.seen) - maxJobHistory
		for _, id := range js.seen {
			old := js.m[id]
			if excess > 0 && old != nil && old.completed() {
				delete(js.m, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		js.seen = kept
	}
}

func (j *job) completed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != JobRunning
}

func (js *jobSet) get(id string) (*job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.m[id]
	return j, ok
}

// wait blocks until all jobs complete or ctx expires.
func (js *jobSet) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		js.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// constant-prefix zero ID rather than crashing the daemon.
		return "job-00000000"
	}
	return "job-" + hex.EncodeToString(b[:])
}

// startJob launches an async synthesis. The job runs under the server's
// base context — detached from the submitting request, so the client can
// disconnect and poll later — and completes when the suite is stored (or
// the run fails). Graceful shutdown drains these via jobSet.wait.
func (s *Server) startJob(model memmodel.Model, opts synth.Options, digest string, pri cluster.Priority) *job {
	j := &job{
		id:      newJobID(),
		digest:  digest,
		model:   model.Name(),
		created: time.Now().UTC(),
		state:   JobRunning,
		done:    make(chan struct{}),
	}
	s.jobs.add(j)
	s.jobs.wg.Add(1)
	s.metrics.jobsActive.Add(1)
	go func() {
		defer func() {
			s.metrics.jobsActive.Add(-1)
			s.metrics.jobsDone.Add(1)
			s.jobs.wg.Done()
			close(j.done)
		}()
		_, cached, err := s.synthesize(s.baseCtx, model, opts, digest, pri, func(f *flight) {
			j.mu.Lock()
			j.flight = f
			j.mu.Unlock()
		})
		j.mu.Lock()
		defer j.mu.Unlock()
		j.cached = cached
		if err != nil {
			j.state = JobFailed
			j.errMsg = err.Error()
			return
		}
		j.state = JobDone
	}()
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	s.streamJob(w, r, j)
}

// streamJob writes newline-delimited JSON status snapshots until the job
// completes or the client disconnects. Each line is a full JobStatus; the
// final line carries the terminal state.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)

	emit := func() bool {
		if err := enc.Encode(j.status()); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !emit() {
		return
	}
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			emit()
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if !emit() {
				return
			}
		}
	}
}
