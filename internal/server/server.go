// Package server exposes the synthesis engine as an HTTP service backed by
// the content-addressed suite store (internal/store).
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/synthesize            synthesize or fetch a cached suite
//	                                 (async job mode with {"async": true})
//	GET    /v1/jobs/{id}             job status; ?stream=1 streams NDJSON
//	                                 progress snapshots until completion
//	GET    /v1/suites                list stored suites
//	GET    /v1/suites/{digest}       manifest; ?format=litmus serves the
//	                                 suite text (?axiom= selects a suite)
//	DELETE /v1/suites/{digest}       evict a stored suite
//	GET    /v1/suites/{digest}/detect  run the x86-TSO fault-detection
//	                                 matrix over the stored union suite
//	POST   /v1/suites/{digest}/run   stress-execute a stored suite natively
//	                                 on this host as an async job (202 +
//	                                 job ID; poll or stream /v1/jobs/{id})
//	GET    /v1/suites/{digest}/render  render a stored suite for a target
//	                                 dialect (?target=x86|power|arm|c11|go,
//	                                 ?axiom= selects a suite)
//	GET    /v1/models                visible models (built-in + registered),
//	                                 each with source ("builtin"/"cat"),
//	                                 definition digest, axioms, relaxations
//	POST   /v1/models                register a cat model definition (plain
//	                                 text body); lints, compiles, and
//	                                 returns the definition digest plus any
//	                                 lint warnings (error findings → 422)
//	POST   /v1/models/lint           dry-run lint of a definition (plain
//	                                 text body); returns the full catlint
//	                                 report without registering anything
//	                                 (?bound= overrides the tier-2 bound)
//	GET    /v1/backends              registered synthesis backends with
//	                                 per-model fallback reasons
//	GET    /v1/admit                 fast-admissibility capability matrix:
//	                                 per builtin model, whether the explore
//	                                 phase can use the polynomial
//	                                 reads-from consistency check
//	GET    /healthz                  liveness probe
//	GET    /metrics                  expvar counters (JSON)
//
// Identical concurrent synthesize requests are coalesced single-flight
// style onto one engine run; completed runs are persisted to the store, so
// a result is computed at most once per (model, bounds, engine version)
// across the daemon's lifetime and across restarts. Engine runs are
// bounded by a semaphore, and a run whose waiters have all disconnected is
// cancelled through its context.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"memsynth/internal/admit"
	"memsynth/internal/cat"
	"memsynth/internal/catlint"
	"memsynth/internal/cluster"
	"memsynth/internal/harness"
	"memsynth/internal/litmus"
	"memsynth/internal/memmodel"
	"memsynth/internal/store"
	"memsynth/internal/synth"

	// Register the SAT-guided backend so "backend": "sat" resolves even
	// when the server is embedded without the memsynth facade.
	_ "memsynth/internal/synth/satgen"
)

// Config configures a Server.
type Config struct {
	// Store is the backing suite store (required).
	Store *store.Store
	// MaxJobs bounds concurrent engine runs (default 2).
	MaxJobs int
	// Models resolves model names for this server instance. Defaults to a
	// fresh registry (built-ins visible, no registrations shared with
	// other instances).
	Models *memmodel.Registry
	// LintBound is the tier-2 event bound used when linting registered
	// definitions (default: the catlint default, 4).
	LintBound int
	// Logf, when non-nil, receives request-level log lines (selected
	// synthesis backend, backend fallback warnings). The daemon wires
	// log.Printf; nil discards.
	Logf func(format string, args ...any)
	// Cluster, when non-nil, makes this server a cluster coordinator:
	// cold synthesize requests are partitioned into shard jobs and
	// distributed to registered workers (falling back to a local engine
	// run when no workers are live), and the /v1/cluster/* worker API is
	// mounted. The server owns neither the coordinator's lifecycle nor
	// its store wiring — the daemon does.
	Cluster *cluster.Coordinator
	// Peer, when non-nil, is consulted on store misses before
	// synthesizing (store.GetThrough): the cluster's shared cache tier.
	// Worker nodes point it at the coordinator's suites API.
	Peer store.Peer
	// RaceBackends races the enumerative and SAT-guided backends on cold
	// local synthesis runs when the client did not explicitly pick a
	// backend: both run concurrently, the first complete result wins,
	// the loser is cancelled, and the winner is recorded in the stored
	// Manifest.Backend and the race_backend_wins metric.
	RaceBackends bool
}

// DefaultMaxJobs is the engine-run concurrency bound when Config.MaxJobs
// is not positive. Each run already fans out over all CPUs internally, so
// a small number of concurrent runs saturates the machine.
const DefaultMaxJobs = 2

// metrics is the per-server expvar counter set, served at /metrics. The
// counters live in a private expvar.Map (not the process-global registry)
// so multiple servers — e.g. under test — never collide.
type metrics struct {
	all *expvar.Map
	// hits/misses count store lookups of synthesize requests; coalesced
	// counts requests that joined an in-flight identical run; synthRuns
	// counts actual engine runs started.
	hits, misses, coalesced, synthRuns *expvar.Int
	// inflight is the gauge of engine runs currently executing.
	inflight *expvar.Int
	// requests / latencyNS accumulate synthesize request count and
	// wall-clock service time.
	requests, latencyNS  *expvar.Int
	jobsActive, jobsDone *expvar.Int
	// lintWarnings counts warning findings on accepted model
	// registrations (422 rejections are not counted).
	lintWarnings *expvar.Int
	// backendReqs counts synthesize requests per selected backend
	// (after defaulting, before cache lookup).
	backendReqs *expvar.Map
	// peerHits counts store misses served by the peer cache tier.
	peerHits *expvar.Int
	// raceWins counts cold-run backend races by winning backend.
	raceWins *expvar.Map
	// stressRuns counts stress jobs started; stressIterations accumulates
	// iterations executed across them; stressUnexplained accumulates
	// iterations whose observed outcome the model forbids.
	stressRuns, stressIterations, stressUnexplained *expvar.Int
	// admitFast accumulates executions decided by the fast-admissibility
	// filter across engine runs (without being enumerated); admitFallbacks
	// counts synthesize requests whose model has no fast-admissibility
	// algorithm and therefore ran on full enumeration.
	admitFast, admitFallbacks *expvar.Int
}

func newMetrics() *metrics {
	m := &metrics{all: new(expvar.Map).Init()}
	mk := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.all.Set(name, v)
		return v
	}
	m.hits = mk("store_hits")
	m.misses = mk("store_misses")
	m.coalesced = mk("coalesced_requests")
	m.synthRuns = mk("synth_runs")
	m.inflight = mk("inflight_runs")
	m.requests = mk("synthesize_requests")
	m.latencyNS = mk("synthesize_latency_ns")
	m.jobsActive = mk("jobs_active")
	m.jobsDone = mk("jobs_done")
	m.lintWarnings = mk("model_lint_warnings")
	m.backendReqs = new(expvar.Map).Init()
	m.all.Set("synth_backend_requests", m.backendReqs)
	m.peerHits = mk("peer_hits")
	m.raceWins = new(expvar.Map).Init()
	m.all.Set("race_backend_wins", m.raceWins)
	m.stressRuns = mk("stress_runs")
	m.stressIterations = mk("stress_iterations")
	m.stressUnexplained = mk("stress_unexplained_outcomes")
	m.admitFast = mk("admit_fast_decisions")
	m.admitFallbacks = mk("admit_fallbacks")
	return m
}

// Server is the memsynthd HTTP service. Create with New, mount
// Handler(), and on shutdown call Drain then Close.
type Server struct {
	store    *store.Store
	models   *memmodel.Registry
	sem      chan struct{}
	metrics  *metrics
	mux      *http.ServeMux
	lintOpts catlint.Options

	cluster      *cluster.Coordinator
	peer         store.Peer
	raceBackends bool

	logFn func(format string, args ...any)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	flights    *flightGroup
	jobs       *jobSet
	// synthFn runs one synthesis; tests swap it to observe or fake runs.
	synthFn func(ctx context.Context, m memmodel.Model, opts synth.Options) (*synth.Result, error)
}

// New builds a Server over cfg.Store.
func New(cfg Config) *Server {
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	models := cfg.Models
	if models == nil {
		models = memmodel.NewRegistry()
	}
	s := &Server{
		store:        cfg.Store,
		models:       models,
		sem:          make(chan struct{}, maxJobs),
		metrics:      newMetrics(),
		mux:          http.NewServeMux(),
		lintOpts:     catlint.Options{Bound: cfg.LintBound},
		logFn:        cfg.Logf,
		synthFn:      synth.SynthesizeContext,
		cluster:      cfg.Cluster,
		peer:         cfg.Peer,
		raceBackends: cfg.RaceBackends,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.flights = newFlightGroup()
	s.jobs = newJobSet()

	// Store-tier observability: LRU hit/miss/evict counters plus the
	// on-disk footprint of the cold tier, sampled at /metrics read time.
	s.metrics.all.Set("store_cache", expvar.Func(func() any { return s.store.Counters() }))
	s.metrics.all.Set("store_bytes", expvar.Func(func() any {
		n, err := s.store.DiskBytes()
		if err != nil {
			return -1
		}
		return n
	}))
	if s.cluster != nil {
		s.metrics.all.Set("cluster", s.cluster.Metrics())
		s.mux.Handle("/v1/cluster/", s.cluster)
	}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models", s.handleModelRegister)
	s.mux.HandleFunc("POST /v1/models/lint", s.handleModelLint)
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("GET /v1/admit", s.handleAdmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/suites", s.handleSuiteList)
	s.mux.HandleFunc("GET /v1/suites/{digest}", s.handleSuiteGet)
	s.mux.HandleFunc("DELETE /v1/suites/{digest}", s.handleSuiteEvict)
	s.mux.HandleFunc("GET /v1/suites/{digest}/detect", s.handleSuiteDetect)
	s.mux.HandleFunc("GET /v1/suites/{digest}/bundle", s.handleSuiteBundle)
	s.mux.HandleFunc("POST /v1/suites/{digest}/run", s.handleSuiteRun)
	s.mux.HandleFunc("GET /v1/suites/{digest}/render", s.handleSuiteRender)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) logf(format string, args ...any) {
	if s.logFn != nil {
		s.logFn(format, args...)
	}
}

// Drain blocks until every async job has completed, or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.wait(ctx) }

// Close cancels every in-flight engine run. Call after Drain on graceful
// shutdown (or alone on abort).
func (s *Server) Close() { s.baseCancel() }

// --- request/response shapes ---

// SynthesizeRequest is the POST /v1/synthesize body. The embedded
// RequestOptions carry the synthesis bounds.
type SynthesizeRequest struct {
	Model string `json:"model"`
	store.RequestOptions
	// Backend selects the synthesis backend ("" means the default,
	// "enum"). Backend choice never changes the produced suites or the
	// cache digest — an unknown name is rejected with 422 listing the
	// known backends.
	Backend string `json:"backend,omitempty"`
	// Admit controls the fast-admissibility filter on the enumeration hot
	// path: "" or "auto" uses it for models with a registered algorithm,
	// "off" forces exhaustive enumeration. Like Backend, the switch never
	// changes the produced suites or the cache digest.
	Admit string `json:"admit,omitempty"`
	// Async enqueues a job and returns 202 with its ID instead of
	// blocking until the suite is ready.
	Async bool `json:"async,omitempty"`
	// Priority orders cluster shard dispatch: "interactive" (default)
	// ahead of "batch". Ignored outside coordinator mode.
	Priority string `json:"priority,omitempty"`
	// Axiom selects which suite the response carries (default "union").
	Axiom string `json:"axiom,omitempty"`
	// Format selects the response body: "json" (default, a summary) or
	// "litmus" (the suite text, byte-identical across cache hits).
	Format string `json:"format,omitempty"`
}

// SynthesizeResponse is the JSON summary of a synthesize request.
type SynthesizeResponse struct {
	Digest        string              `json:"digest"`
	Model         string              `json:"model"`
	EngineVersion string              `json:"engine_version"`
	Cached        bool                `json:"cached"`
	Stats         store.StatsManifest `json:"stats"`
	// Suites maps suite name ("union" or axiom) to its test count.
	Suites map[string]int `json:"suites"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Findings carries the lint diagnostics when a model registration is
	// rejected for error-severity findings.
	Findings []catlint.Finding `json:"findings,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.all.String())
}

// modelInfo is one row of the /v1/models listing and the response body of
// a model registration.
type modelInfo struct {
	Name string `json:"name"`
	// Source is "builtin" for native Go models, "cat" for registered
	// definitions.
	Source string `json:"source"`
	// Digest is the hash of the normalized definition ("" for built-ins).
	Digest      string   `json:"digest,omitempty"`
	Axioms      []string `json:"axioms"`
	Relaxations []string `json:"relaxations"`
	// Warnings are the warning-severity lint findings of a registration
	// response (never set in the /v1/models listing).
	Warnings []catlint.Finding `json:"warnings,omitempty"`
}

func describeModel(m memmodel.Model) modelInfo {
	info := modelInfo{Name: m.Name(), Relaxations: memmodel.RelaxationTags(m)}
	info.Source, info.Digest = memmodel.SourceOf(m)
	for _, a := range m.Axioms() {
		info.Axioms = append(info.Axioms, a.Name)
	}
	sort.Strings(info.Axioms)
	return info
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	var out []modelInfo
	for _, m := range s.models.All() {
		out = append(out, describeModel(m))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleModelRegister lints and compiles a cat definition (plain-text
// request body) and registers it in this server's model registry.
// Error-severity lint findings reject the definition with 422 (the
// findings ride along in the error response); warnings are returned with
// the 201 and counted in the model_lint_warnings metric. Registering the
// same name again replaces the definition; cached suites are unaffected
// because store digests are keyed by the definition hash, not the name.
func (s *Server) handleModelRegister(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	report := catlint.Lint(string(src), s.lintOpts)
	m, err := cat.Compile(string(src))
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorResponse{Error: err.Error(), Findings: report.Findings})
		return
	}
	if report.HasErrors() {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:    fmt.Sprintf("definition rejected by lint: %s", report.Findings[0]),
			Findings: report.Findings,
		})
		return
	}
	if err := s.models.Register(m); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info := describeModel(m)
	info.Warnings = report.Findings
	s.metrics.lintWarnings.Add(int64(len(report.Findings)))
	writeJSON(w, http.StatusCreated, info)
}

// handleModelLint runs the full two-tier analysis over a definition
// without registering it. Unlike registration, an uncompilable or
// erroneous definition still yields a 200 — the report is the product.
// ?bound=N overrides the tier-2 event bound.
func (s *Server) handleModelLint(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	opts := s.lintOpts
	if raw := r.URL.Query().Get("bound"); raw != "" {
		bound, err := strconv.Atoi(raw)
		if err != nil || bound <= 0 {
			writeError(w, http.StatusBadRequest, "bad bound %q", raw)
			return
		}
		opts.Bound = bound
	}
	writeJSON(w, http.StatusOK, catlint.Lint(string(src), opts))
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.metrics.requests.Add(1)
	defer func() { s.metrics.latencyNS.Add(int64(time.Since(t0))) }()

	var req SynthesizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	model, err := s.models.ByName(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	backendName := req.Backend
	if backendName == "" {
		backendName = synth.DefaultBackend
	}
	be, err := synth.BackendByName(backendName)
	if err != nil {
		// The error text lists the registered backends.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opts := req.RequestOptions.SynthOptions()
	opts.Backend = backendName
	opts.Admit = req.Admit
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.backendReqs.Add(backendName, 1)
	s.logf("synthesize model=%s max_events=%d backend=%s", model.Name(), opts.MaxEvents, backendName)
	if sup, ok := be.(synth.Supporter); ok {
		if native, reason := sup.Supports(model); !native {
			s.logf("warning: backend %s falls back to the enum engine for model %s: %s",
				backendName, model.Name(), reason)
		}
	}
	if opts.Admit != "off" {
		if ok, reason := admit.Supports(model); !ok {
			s.metrics.admitFallbacks.Add(1)
			s.logf("admit: model %s falls back to exhaustive enumeration: %s", model.Name(), reason)
		}
	}
	switch req.Format {
	case "", "json", "litmus":
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or litmus)", req.Format)
		return
	}
	pri, err := cluster.ParsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	digest := store.DigestModel(model, opts)
	if s.cluster != nil {
		s.cluster.RecordRequest(model, opts)
	}

	if req.Async {
		job := s.startJob(model, opts, digest, pri)
		writeJSON(w, http.StatusAccepted, job.status())
		return
	}

	ss, cached, err := s.synthesize(r.Context(), model, opts, digest, pri, nil)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			// Client went away; the response is written into the void.
			return
		}
		var sat *cluster.SaturatedError
		if errors.As(err, &sat) {
			// Backpressure: the cluster dispatch queue is full. Tell the
			// client when to come back rather than queueing unboundedly.
			secs := int(sat.RetryAfter.Round(time.Second).Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeSuite(w, req, ss, cached)
}

// handleSuiteBundle serves a complete store entry (manifest plus every
// suite text) in one response — the transfer unit of the cluster's peer
// read-through cache tier (cluster.PeerClient fetches these).
func (s *Server) handleSuiteBundle(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	ss, err := s.store.Get(digest)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no suite with digest %s", digest)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Memsynth-Digest", digest)
	writeJSON(w, http.StatusOK, cluster.SuiteBundle{Manifest: ss.Manifest, Texts: ss.Texts})
}

// writeSuite renders a synthesize response in the requested format.
func (s *Server) writeSuite(w http.ResponseWriter, req SynthesizeRequest, ss *store.StoredSuite, cached bool) {
	w.Header().Set("X-Memsynth-Digest", ss.Manifest.Digest)
	w.Header().Set("X-Memsynth-Cached", fmt.Sprintf("%t", cached))
	if req.Format == "litmus" {
		axiom := req.Axiom
		if axiom == "" {
			axiom = store.UnionSuite
		}
		text, ok := ss.Text(axiom)
		if !ok {
			writeError(w, http.StatusNotFound, "model %s has no suite %q", ss.Manifest.Model, axiom)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
		return
	}
	writeJSON(w, http.StatusOK, synthesizeResponse(ss, cached))
}

func synthesizeResponse(ss *store.StoredSuite, cached bool) SynthesizeResponse {
	resp := SynthesizeResponse{
		Digest:        ss.Manifest.Digest,
		Model:         ss.Manifest.Model,
		EngineVersion: ss.Manifest.EngineVersion,
		Cached:        cached,
		Stats:         ss.Manifest.Stats,
		Suites:        make(map[string]int, len(ss.Manifest.Suites)),
	}
	for name, sm := range ss.Manifest.Suites {
		resp.Suites[name] = sm.Tests
	}
	return resp
}

// backendInfo is one row of the /v1/backends listing.
type backendInfo struct {
	Name    string `json:"name"`
	Default bool   `json:"default"`
	// Fallbacks maps visible model names to the reason this backend runs
	// them on the enumerative engine instead of its native search; absent
	// for models (and backends) handled natively.
	Fallbacks map[string]string `json:"fallbacks,omitempty"`
}

// handleAdmit reports, per builtin model, whether the enumeration engine
// has a fast-admissibility algorithm for it (and why not, when it does
// not). Models registered from cat definitions always fall back, so they
// are reported only through their absence from the builtin capability
// matrix.
func (s *Server) handleAdmit(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, admit.Models())
}

// handleBackends lists the registered synthesis backends and, per visible
// model, whether each backend would fall back to the enumerative engine.
func (s *Server) handleBackends(w http.ResponseWriter, _ *http.Request) {
	var out []backendInfo
	for _, name := range synth.Backends() {
		be, err := synth.BackendByName(name)
		if err != nil {
			continue // racing deregistration cannot happen; defensive
		}
		info := backendInfo{Name: name, Default: name == synth.DefaultBackend}
		if sup, ok := be.(synth.Supporter); ok {
			for _, m := range s.models.All() {
				if native, reason := sup.Supports(m); !native {
					if info.Fallbacks == nil {
						info.Fallbacks = make(map[string]string)
					}
					info.Fallbacks[m.Name()] = reason
				}
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSuiteList(w http.ResponseWriter, _ *http.Request) {
	manifests, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type listed struct {
		Digest        string               `json:"digest"`
		Model         string               `json:"model"`
		EngineVersion string               `json:"engine_version"`
		CreatedAt     time.Time            `json:"created_at"`
		Options       store.RequestOptions `json:"options"`
		Tests         int                  `json:"tests"`
	}
	out := make([]listed, 0, len(manifests))
	for _, m := range manifests {
		out = append(out, listed{
			Digest:        m.Digest,
			Model:         m.Model,
			EngineVersion: m.EngineVersion,
			CreatedAt:     m.CreatedAt,
			Options:       m.Options,
			Tests:         m.Suites[store.UnionSuite].Tests,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSuiteGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	ss, err := s.store.Get(digest)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no suite with digest %s", digest)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if r.URL.Query().Get("format") == "litmus" {
		axiom := r.URL.Query().Get("axiom")
		if axiom == "" {
			axiom = store.UnionSuite
		}
		text, ok := ss.Text(axiom)
		if !ok {
			writeError(w, http.StatusNotFound, "suite %s has no axiom %q (have: %v)",
				digest, axiom, ss.SuiteNames())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Memsynth-Digest", digest)
		fmt.Fprint(w, text)
		return
	}
	writeJSON(w, http.StatusOK, ss.Manifest)
}

func (s *Server) handleSuiteEvict(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	err := s.store.Evict(digest)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no suite with digest %s", digest)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSuiteDetect(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	_, res, model, ok := s.loadSuiteModel(w, digest)
	if !ok {
		return
	}
	tests := make([]*litmus.Test, 0, len(res.Union.Entries))
	for _, e := range res.Union.Entries {
		tests = append(tests, e.Test)
	}
	rows, err := harness.DetectionMatrixContext(r.Context(), model, tests)
	if err != nil {
		// Client cancelled mid-matrix; nothing useful to write.
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Digest string                     `json:"digest"`
		Model  string                     `json:"model"`
		Tests  int                        `json:"tests"`
		Rows   []harness.DetectionSummary `json:"rows"`
	}{Digest: digest, Model: model.Name(), Tests: len(tests), Rows: harness.Summarize(rows)})
}
