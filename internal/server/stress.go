package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"memsynth/internal/harness"
	"memsynth/internal/litmus"
	"memsynth/internal/memmodel"
	"memsynth/internal/render"
	"memsynth/internal/store"
	"memsynth/internal/stress"
	"memsynth/internal/synth"
)

// JobKindStress marks stress jobs in JobStatus.Kind.
const JobKindStress = "stress"

// StressRequest is the POST /v1/suites/{digest}/run body. An empty body
// stress-executes the union suite with defaults.
type StressRequest struct {
	// Mode is the compile scheme: "atomic" (default) or "plain". Plain is
	// refused when the daemon was built with the race detector.
	Mode string `json:"mode,omitempty"`
	// Iterations and Batch bound the per-test run (package stress
	// defaults apply when zero).
	Iterations int `json:"iterations,omitempty"`
	Batch      int `json:"batch,omitempty"`
	// Seed seeds the shuffle/skew schedule. Zero picks a time-derived
	// seed; either way the seed actually used is recorded in the job's
	// StressParams before the 202 is written, so every run is replayable
	// from its job status alone.
	Seed int64 `json:"seed,omitempty"`
	// Axiom selects which stored suite to run (default "union").
	Axiom string `json:"axiom,omitempty"`
}

// StressParams is the normalized run manifest of a stress job: the exact
// parameters (seed included) that reproduce the run.
type StressParams struct {
	Mode       string `json:"mode"`
	Iterations int    `json:"iterations"`
	Batch      int    `json:"batch"`
	Seed       int64  `json:"seed"`
	Axiom      string `json:"axiom"`
}

// StressRunResult is the Result of a completed stress job.
type StressRunResult struct {
	Digest string `json:"digest"`
	Model  string `json:"model"`
	Mode   string `json:"mode"`
	Seed   int64  `json:"seed"`
	// TestsRun / Skipped / Iterations / Unexplained aggregate over the
	// suite; Violations counts distinct observed-but-forbidden outcomes.
	TestsRun    int   `json:"tests_run"`
	Skipped     int   `json:"skipped,omitempty"`
	Iterations  int64 `json:"iterations"`
	Unexplained int64 `json:"unexplained"`
	Violations  int   `json:"violations"`
	Interrupted bool  `json:"interrupted,omitempty"`
	ElapsedMS   int64 `json:"elapsed_ms"`
	// Reports holds the per-test outcome histograms with Allowed flags
	// filled by the model cross-check.
	Reports []*stress.Report `json:"reports"`
}

// loadSuiteModel fetches a stored suite, rehydrates its result, and
// resolves its model — insisting a registered definition still matches
// the stored digest (replacing a same-named model must not silently
// change what /detect, /run, or /render mean). On failure the error
// response has been written and ok is false.
func (s *Server) loadSuiteModel(w http.ResponseWriter, digest string) (*store.StoredSuite, *synth.Result, memmodel.Model, bool) {
	ss, err := s.store.Get(digest)
	if errors.Is(err, store.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no suite with digest %s", digest)
		return nil, nil, nil, false
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, nil, nil, false
	}
	res, err := ss.Result()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, nil, nil, false
	}
	model, err := s.models.ByName(ss.Manifest.Model)
	if err != nil {
		writeError(w, http.StatusConflict, "stored model is not available: %v", err)
		return nil, nil, nil, false
	}
	if want := ss.Manifest.ModelDigest; want != "" {
		if _, have := memmodel.SourceOf(model); have != want {
			writeError(w, http.StatusConflict,
				"stored suite was synthesized from definition %s but the registered model %q now has digest %q",
				want, ss.Manifest.Model, have)
			return nil, nil, nil, false
		}
	}
	return ss, res, model, true
}

// suiteEntries selects a stored sub-suite by name ("" and "union" mean
// the union suite).
func suiteEntries(res *synth.Result, axiom string) ([]synth.Entry, bool) {
	if axiom == "" || axiom == store.UnionSuite {
		return res.Union.Entries, true
	}
	su, ok := res.PerAxiom[axiom]
	if !ok {
		return nil, false
	}
	return su.Entries, true
}

// handleSuiteRun stress-executes a stored suite natively on this host as
// an async job: 202 with the job status (whose StressParams carry the
// normalized seed), then poll or stream /v1/jobs/{id}. The completed
// job's Result is a StressRunResult with per-test histograms cross-checked
// against the suite's model.
func (s *Server) handleSuiteRun(w http.ResponseWriter, r *http.Request) {
	var req StressRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mode, err := stress.ParseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if mode == stress.ModePlain && stress.RaceEnabled {
		writeError(w, http.StatusUnprocessableEntity,
			"%v", stress.ErrPlainUnderRace)
		return
	}
	if req.Iterations < 0 || req.Batch < 0 {
		writeError(w, http.StatusBadRequest, "negative iterations or batch")
		return
	}
	_, res, model, ok := s.loadSuiteModel(w, r.PathValue("digest"))
	if !ok {
		return
	}
	entries, ok := suiteEntries(res, req.Axiom)
	if !ok {
		writeError(w, http.StatusNotFound, "suite %s has no axiom %q",
			r.PathValue("digest"), req.Axiom)
		return
	}
	tests := make([]*litmus.Test, 0, len(entries))
	for _, e := range entries {
		tests = append(tests, e.Test)
	}
	opts := stress.Options{Mode: mode, Iterations: req.Iterations, Batch: req.Batch, Seed: req.Seed}
	// Normalize the seed before the job exists so the 202 already carries
	// the replay manifest.
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano() | 1
	}
	axiom := req.Axiom
	if axiom == "" {
		axiom = store.UnionSuite
	}
	params := &StressParams{
		Mode:       mode.String(),
		Iterations: req.Iterations,
		Batch:      req.Batch,
		Seed:       opts.Seed,
		Axiom:      axiom,
	}
	s.logf("stress digest=%s model=%s mode=%s tests=%d seed=%d",
		r.PathValue("digest"), model.Name(), params.Mode, len(tests), params.Seed)
	j := s.startStressJob(model, tests, r.PathValue("digest"), params, opts)
	writeJSON(w, http.StatusAccepted, j.status())
}

// startStressJob launches an async suite stress run, detached from the
// submitting request like synthesis jobs (run under the server's base
// context, drained on shutdown, streamable via /v1/jobs/{id}?stream=1).
func (s *Server) startStressJob(model memmodel.Model, tests []*litmus.Test, digest string, params *StressParams, opts stress.Options) *job {
	j := &job{
		id:      newJobID(),
		digest:  digest,
		model:   model.Name(),
		kind:    JobKindStress,
		created: time.Now().UTC(),
		state:   JobRunning,
		done:    make(chan struct{}),
		stress:  params,
	}
	var mu sync.Mutex
	var last harness.StressProgress
	t0 := time.Now()
	j.progressFn = func() *JobProgress {
		mu.Lock()
		defer mu.Unlock()
		return &JobProgress{
			Phase:       "stress",
			ElapsedMS:   time.Since(t0).Milliseconds(),
			TestsRun:    last.TestsRun,
			TestsTotal:  len(tests),
			Iterations:  last.Iterations,
			Unexplained: last.Unexplained,
		}
	}
	s.jobs.add(j)
	s.jobs.wg.Add(1)
	s.metrics.jobsActive.Add(1)
	s.metrics.stressRuns.Add(1)
	go func() {
		defer func() {
			s.metrics.jobsActive.Add(-1)
			s.metrics.jobsDone.Add(1)
			s.jobs.wg.Done()
			close(j.done)
		}()
		rep := harness.RunStressSuite(s.baseCtx, model, tests, opts, func(p harness.StressProgress) {
			mu.Lock()
			last = p
			mu.Unlock()
		})
		s.metrics.stressIterations.Add(rep.Iterations)
		s.metrics.stressUnexplained.Add(rep.Unexplained)
		j.mu.Lock()
		defer j.mu.Unlock()
		j.result = &StressRunResult{
			Digest:      digest,
			Model:       model.Name(),
			Mode:        rep.Mode,
			Seed:        rep.Seed,
			TestsRun:    rep.TestsRun,
			Skipped:     rep.Skipped,
			Iterations:  rep.Iterations,
			Unexplained: rep.Unexplained,
			Violations:  len(rep.Violations),
			Interrupted: rep.Interrupted,
			ElapsedMS:   rep.Elapsed.Milliseconds(),
			Reports:     rep.Reports,
		}
		j.state = JobDone
	}()
	return j
}

// handleSuiteRender serves a stored suite rendered for a target dialect:
// ?target=x86|power|arm|c11|go (default: the model's conventional
// target), ?axiom= selects a sub-suite. Listings are concatenated with
// blank-line separators; a test outside the target's vocabulary is a 422.
func (s *Server) handleSuiteRender(w http.ResponseWriter, r *http.Request) {
	ss, res, _, ok := s.loadSuiteModel(w, r.PathValue("digest"))
	if !ok {
		return
	}
	var target render.Target
	if raw := r.URL.Query().Get("target"); raw != "" {
		t, err := render.ParseTarget(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		target = t
	} else {
		t, ok := render.TargetFor(ss.Manifest.Model)
		if !ok {
			writeError(w, http.StatusBadRequest,
				"model %q has no conventional render target; pass ?target=x86|power|arm|c11|go",
				ss.Manifest.Model)
			return
		}
		target = t
	}
	entries, ok := suiteEntries(res, r.URL.Query().Get("axiom"))
	if !ok {
		writeError(w, http.StatusNotFound, "suite %s has no axiom %q",
			r.PathValue("digest"), r.URL.Query().Get("axiom"))
		return
	}
	var b strings.Builder
	for i, e := range entries {
		text, err := render.Render(target, e.Test, e.Exec)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity,
				"rendering %s for %s: %v", e.Test.Name, target, err)
			return
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(text)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Memsynth-Digest", ss.Manifest.Digest)
	w.Header().Set("X-Memsynth-Target", target.String())
	fmt.Fprint(w, b.String())
}
