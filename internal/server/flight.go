package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"memsynth/internal/cluster"
	"memsynth/internal/memmodel"
	"memsynth/internal/store"
	"memsynth/internal/synth"
)

// errAbandoned reports an engine run cancelled because every waiter
// disconnected (or the server shut down) before it finished.
var errAbandoned = errors.New("server: synthesis abandoned (all waiters gone)")

// flight is one in-flight synthesis shared by every request for the same
// digest. The creating request is the leader: it runs the engine (bounded
// by the server semaphore) and publishes the stored suite; followers just
// wait on done. refs counts waiters still interested — when it reaches
// zero the run's context is cancelled, honoring client disconnects.
type flight struct {
	digest string
	done   chan struct{}
	runCtx context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	refs int
	last synth.ProgressEvent
	ss   *store.StoredSuite
	err  error
}

// snapshot returns the latest engine progress event (zero until the run
// emits one).
func (f *flight) snapshot() synth.ProgressEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// observe records a progress event; it is the engine's Options.Progress
// sink, shared by every waiter (and async jobs polling the flight).
func (f *flight) observe(ev synth.ProgressEvent) {
	f.mu.Lock()
	f.last = ev
	f.mu.Unlock()
}

// release drops one waiter reference; the last leaver cancels the run.
func (f *flight) release() {
	f.mu.Lock()
	f.refs--
	cancel := f.refs == 0
	f.mu.Unlock()
	if cancel {
		f.cancel()
	}
}

// flightGroup deduplicates concurrent synthesis runs by digest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for digest, creating it when absent. created
// reports whether the caller is the leader and must run the engine.
func (g *flightGroup) join(digest string, newCtx func() (context.Context, context.CancelFunc)) (f *flight, created bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[digest]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		return f, false
	}
	runCtx, cancel := newCtx()
	f = &flight{digest: digest, done: make(chan struct{}), refs: 1, runCtx: runCtx, cancel: cancel}
	g.m[digest] = f
	return f, true
}

// forget removes a completed flight so later requests start fresh (they
// will hit the store instead).
func (g *flightGroup) forget(digest string) {
	g.mu.Lock()
	delete(g.m, digest)
	g.mu.Unlock()
}

// synthesize returns the stored suite for (model, opts): from the store
// when present (a hit), otherwise by running the engine exactly once per
// digest no matter how many identical requests arrive concurrently.
// attach, when non-nil, receives the flight (hit paths pass nothing) so
// async jobs can surface live progress. The returned cached flag reports
// whether the suite was served without an engine run from this call's
// perspective (store hit only; coalesced followers report cached=false,
// matching "the request did trigger/await synthesis").
func (s *Server) synthesize(ctx context.Context, model memmodel.Model, opts synth.Options, digest string, pri cluster.Priority, attach func(*flight)) (ss *store.StoredSuite, cached bool, err error) {
	// The lookup reads through the peer cache tier when one is wired
	// (worker nodes pointing at the coordinator's store): a peer hit is
	// persisted locally and served as a cache hit — synthesis is the
	// last resort.
	if ss, fromPeer, err := s.store.GetThrough(ctx, digest, s.peer); err == nil {
		s.metrics.hits.Add(1)
		if fromPeer {
			s.metrics.peerHits.Add(1)
		}
		return ss, true, nil
	} else if !errors.Is(err, store.ErrNotFound) {
		if s.peer == nil {
			return nil, false, err
		}
		// An unreachable (or misbehaving) peer must never take down
		// synthesis; degrade to a plain miss and compute locally.
		s.logf("peer read-through failed for %.12s: %v", digest, err)
	}
	s.metrics.misses.Add(1)

	f, leader := s.flights.join(digest, func() (context.Context, context.CancelFunc) {
		return context.WithCancel(s.baseCtx)
	})
	if attach != nil {
		attach(f)
	}
	if leader {
		go s.lead(f, model, opts, pri)
	} else {
		s.metrics.coalesced.Add(1)
	}

	select {
	case <-f.done:
		return f.ss, false, f.err
	case <-ctx.Done():
		f.release()
		return nil, false, ctx.Err()
	}
}

// lead runs the engine for flight f and publishes the result. It is the
// only goroutine that writes f.ss/f.err before done is closed.
func (s *Server) lead(f *flight, model memmodel.Model, opts synth.Options, pri cluster.Priority) {
	defer close(f.done)
	defer s.flights.forget(f.digest)

	// Coordinator mode: distribute the run across the worker fleet. The
	// cluster path sits before the local engine semaphore — the compute
	// happens on workers, so holding a local run slot would be wrong.
	// An empty fleet or non-shippable model falls back to the local
	// engine; saturation propagates to the client as backpressure (429).
	if s.cluster != nil {
		res, err := s.cluster.Synthesize(f.runCtx, model, opts, pri, f.observe)
		switch {
		case err == nil:
			s.metrics.admitFast.Add(int64(res.Stats.ExecutionsFast))
			f.ss, f.err = s.store.Put(res)
			return
		case errors.Is(err, cluster.ErrSaturated):
			f.err = err
			return
		case f.runCtx.Err() != nil:
			f.err = errAbandoned
			return
		case errors.Is(err, cluster.ErrNoWorkers), errors.Is(err, cluster.ErrNotDistributable):
			s.logf("cluster: local fallback for %.12s: %v", f.digest, err)
		default:
			s.logf("cluster: synthesis of %.12s failed (%v); falling back to local run", f.digest, err)
		}
	}

	// Bound concurrent engine runs; give up if the run is cancelled (all
	// waiters gone or server closing) while still queued.
	select {
	case s.sem <- struct{}{}:
	case <-f.runCtx.Done():
		f.err = errAbandoned
		return
	}
	defer func() { <-s.sem }()

	s.metrics.synthRuns.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	opts.Progress = f.observe
	res, err := s.runLocal(f.runCtx, model, opts)
	switch {
	case err != nil:
		f.err = err
	case res.Stats.Interrupted:
		f.err = errAbandoned
	default:
		s.metrics.admitFast.Add(int64(res.Stats.ExecutionsFast))
		f.ss, f.err = s.store.Put(res)
	}
}

// runLocal executes one engine run on this node. In race mode a cold run
// on the default backend becomes a race: the enumerative and SAT-guided
// backends start together, the first complete result wins (they are
// byte-identical by the backend contract, so either is correct), and the
// loser is cancelled. The winner's name lands in Result.Backend, hence
// in the stored Manifest.Backend and the race_backend_wins metric.
func (s *Server) runLocal(ctx context.Context, model memmodel.Model, opts synth.Options) (*synth.Result, error) {
	const raceRival = "sat"
	racing := s.raceBackends &&
		(opts.Backend == "" || opts.Backend == synth.DefaultBackend)
	if racing {
		if _, err := synth.BackendByName(raceRival); err != nil {
			racing = false
		}
	}
	if !racing {
		return s.synthFn(ctx, model, opts)
	}

	type outcome struct {
		res *synth.Result
		err error
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 2)
	for _, name := range []string{synth.DefaultBackend, raceRival} {
		o := opts
		o.Backend = name
		go func() {
			res, err := s.synthFn(raceCtx, model, o)
			ch <- outcome{res, err}
		}()
	}
	var winner, last outcome
	for i := 0; i < 2; i++ {
		oc := <-ch
		if winner.res == nil && oc.err == nil && !oc.res.Stats.Interrupted {
			winner = oc
			// The loser's partial work is worthless (the winner's result
			// is already complete); stop burning CPU on it. The loop
			// still waits for it so no engine run outlives this call.
			cancel()
			continue
		}
		last = oc
	}
	if winner.res != nil {
		s.metrics.raceWins.Add(winner.res.Backend, 1)
		s.logf("backend race for model %s won by %s in %s",
			model.Name(), winner.res.Backend, winner.res.Stats.Elapsed.Round(time.Millisecond))
		return winner.res, nil
	}
	return last.res, last.err
}
