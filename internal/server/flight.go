package server

import (
	"context"
	"errors"
	"sync"

	"memsynth/internal/memmodel"
	"memsynth/internal/store"
	"memsynth/internal/synth"
)

// errAbandoned reports an engine run cancelled because every waiter
// disconnected (or the server shut down) before it finished.
var errAbandoned = errors.New("server: synthesis abandoned (all waiters gone)")

// flight is one in-flight synthesis shared by every request for the same
// digest. The creating request is the leader: it runs the engine (bounded
// by the server semaphore) and publishes the stored suite; followers just
// wait on done. refs counts waiters still interested — when it reaches
// zero the run's context is cancelled, honoring client disconnects.
type flight struct {
	digest string
	done   chan struct{}
	runCtx context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	refs int
	last synth.ProgressEvent
	ss   *store.StoredSuite
	err  error
}

// snapshot returns the latest engine progress event (zero until the run
// emits one).
func (f *flight) snapshot() synth.ProgressEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// observe records a progress event; it is the engine's Options.Progress
// sink, shared by every waiter (and async jobs polling the flight).
func (f *flight) observe(ev synth.ProgressEvent) {
	f.mu.Lock()
	f.last = ev
	f.mu.Unlock()
}

// release drops one waiter reference; the last leaver cancels the run.
func (f *flight) release() {
	f.mu.Lock()
	f.refs--
	cancel := f.refs == 0
	f.mu.Unlock()
	if cancel {
		f.cancel()
	}
}

// flightGroup deduplicates concurrent synthesis runs by digest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for digest, creating it when absent. created
// reports whether the caller is the leader and must run the engine.
func (g *flightGroup) join(digest string, newCtx func() (context.Context, context.CancelFunc)) (f *flight, created bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[digest]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		return f, false
	}
	runCtx, cancel := newCtx()
	f = &flight{digest: digest, done: make(chan struct{}), refs: 1, runCtx: runCtx, cancel: cancel}
	g.m[digest] = f
	return f, true
}

// forget removes a completed flight so later requests start fresh (they
// will hit the store instead).
func (g *flightGroup) forget(digest string) {
	g.mu.Lock()
	delete(g.m, digest)
	g.mu.Unlock()
}

// synthesize returns the stored suite for (model, opts): from the store
// when present (a hit), otherwise by running the engine exactly once per
// digest no matter how many identical requests arrive concurrently.
// attach, when non-nil, receives the flight (hit paths pass nothing) so
// async jobs can surface live progress. The returned cached flag reports
// whether the suite was served without an engine run from this call's
// perspective (store hit only; coalesced followers report cached=false,
// matching "the request did trigger/await synthesis").
func (s *Server) synthesize(ctx context.Context, model memmodel.Model, opts synth.Options, digest string, attach func(*flight)) (ss *store.StoredSuite, cached bool, err error) {
	if ss, err := s.store.Get(digest); err == nil {
		s.metrics.hits.Add(1)
		return ss, true, nil
	} else if !errors.Is(err, store.ErrNotFound) {
		return nil, false, err
	}
	s.metrics.misses.Add(1)

	f, leader := s.flights.join(digest, func() (context.Context, context.CancelFunc) {
		return context.WithCancel(s.baseCtx)
	})
	if attach != nil {
		attach(f)
	}
	if leader {
		go s.lead(f, model, opts)
	} else {
		s.metrics.coalesced.Add(1)
	}

	select {
	case <-f.done:
		return f.ss, false, f.err
	case <-ctx.Done():
		f.release()
		return nil, false, ctx.Err()
	}
}

// lead runs the engine for flight f and publishes the result. It is the
// only goroutine that writes f.ss/f.err before done is closed.
func (s *Server) lead(f *flight, model memmodel.Model, opts synth.Options) {
	defer close(f.done)
	defer s.flights.forget(f.digest)

	// Bound concurrent engine runs; give up if the run is cancelled (all
	// waiters gone or server closing) while still queued.
	select {
	case s.sem <- struct{}{}:
	case <-f.runCtx.Done():
		f.err = errAbandoned
		return
	}
	defer func() { <-s.sem }()

	s.metrics.synthRuns.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	opts.Progress = f.observe
	res, err := s.synthFn(f.runCtx, model, opts)
	switch {
	case err != nil:
		f.err = err
	case res.Stats.Interrupted:
		f.err = errAbandoned
	default:
		f.ss, f.err = s.store.Put(res)
	}
}
