package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memsynth/internal/cluster"
	"memsynth/internal/memmodel"
	"memsynth/internal/store"
	"memsynth/internal/synth"
)

func newTestServer(t testing.TB, dir string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st, MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSynthesize(t testing.TB, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// readMetrics fetches and decodes /metrics (counters are numbers; the
// per-backend request counter is a nested map).
func readMetrics(t testing.TB, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// metricValue reads one counter from /metrics.
func metricValue(t testing.TB, url, name string) int64 {
	t.Helper()
	v, ok := readMetrics(t, url)[name]
	if !ok {
		t.Fatalf("metric %q missing", name)
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("metric %q is not a number: %v", name, v)
	}
	return int64(f)
}

// TestSynthesizeCacheHitEndToEnd is the acceptance flow: two identical
// POSTs — the second is a store hit (visible in /metrics) returning a
// byte-identical suite — and the suite is also served by /v1/suites.
func TestSynthesizeCacheHitEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	body := `{"model":"sc","max_events":4,"format":"litmus"}`

	resp1, suite1 := postSynthesize(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, suite1)
	}
	if got := resp1.Header.Get("X-Memsynth-Cached"); got != "false" {
		t.Errorf("first POST cached header = %q, want false", got)
	}
	if len(suite1) == 0 || !strings.Contains(string(suite1), "forbid:") {
		t.Fatalf("first POST returned no suite text: %q", suite1)
	}

	resp2, suite2 := postSynthesize(t, ts.URL, body)
	if got := resp2.Header.Get("X-Memsynth-Cached"); got != "true" {
		t.Errorf("second POST cached header = %q, want true", got)
	}
	if !bytes.Equal(suite1, suite2) {
		t.Error("cache hit returned different suite bytes")
	}
	if hits := metricValue(t, ts.URL, "store_hits"); hits != 1 {
		t.Errorf("store_hits = %d, want 1", hits)
	}
	if misses := metricValue(t, ts.URL, "store_misses"); misses != 1 {
		t.Errorf("store_misses = %d, want 1", misses)
	}
	if runs := metricValue(t, ts.URL, "synth_runs"); runs != 1 {
		t.Errorf("synth_runs = %d, want 1", runs)
	}

	digest := resp1.Header.Get("X-Memsynth-Digest")
	resp3, err := http.Get(ts.URL + "/v1/suites/" + digest + "?format=litmus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	suite3, _ := io.ReadAll(resp3.Body)
	if !bytes.Equal(suite1, suite3) {
		t.Error("GET /v1/suites suite differs from POST response")
	}
}

// TestSingleFlightCoalescing: two concurrent identical requests trigger
// exactly one engine run; the follower is counted as coalesced.
func TestSingleFlightCoalescing(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	s.synthFn = func(ctx context.Context, m memmodel.Model, opts synth.Options) (*synth.Result, error) {
		started <- struct{}{}
		<-release
		return synth.SynthesizeContext(ctx, m, opts)
	}

	body := `{"model":"sc","max_events":3,"format":"litmus"}`
	var wg sync.WaitGroup
	results := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, data := postSynthesize(t, ts.URL, body)
			results[i] = data
		}(i)
	}

	<-started // leader is inside the engine
	// Wait until the second request has joined the flight.
	for deadline := time.Now().Add(5 * time.Second); s.metrics.coalesced.Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if runs := s.metrics.synthRuns.Value(); runs != 1 {
		t.Errorf("synth_runs = %d, want 1 (single-flight)", runs)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("coalesced requests returned different suites")
	}
	select {
	case <-started:
		t.Error("engine ran twice")
	default:
	}
}

// TestStoreSurvivesRestart: a fresh server instance over the same data
// dir serves the previously synthesized suite without any engine run.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, dir)
	body := `{"model":"sc","max_events":4,"format":"litmus"}`
	resp1, suite1 := postSynthesize(t, ts1.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d", resp1.StatusCode)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, dir)
	s2.synthFn = func(context.Context, memmodel.Model, synth.Options) (*synth.Result, error) {
		return nil, errors.New("engine must not run: suite is persisted")
	}
	resp2, suite2 := postSynthesize(t, ts2.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restart POST: %d: %s", resp2.StatusCode, suite2)
	}
	if got := resp2.Header.Get("X-Memsynth-Cached"); got != "true" {
		t.Errorf("restart POST cached header = %q, want true", got)
	}
	if !bytes.Equal(suite1, suite2) {
		t.Error("suite differs across server restart")
	}
}

// TestClientDisconnectCancelsRun: when the only waiter goes away, the
// engine run's context is cancelled.
func TestClientDisconnectCancelsRun(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st})
	defer s.Close()

	engineCancelled := make(chan struct{})
	s.synthFn = func(ctx context.Context, m memmodel.Model, opts synth.Options) (*synth.Result, error) {
		<-ctx.Done()
		close(engineCancelled)
		return &synth.Result{Stats: synth.Stats{Interrupted: true}}, nil
	}

	model, err := memmodel.ByName("sc")
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.Options{MaxEvents: 3}
	digest := store.Digest("sc", "", opts)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.synthesize(ctx, model, opts, digest, cluster.PriorityInteractive, nil)
		errc <- err
	}()
	// Let the request join and the leader start, then disconnect.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("synthesize after disconnect: %v, want context.Canceled", err)
	}
	select {
	case <-engineCancelled:
	case <-time.After(5 * time.Second):
		t.Error("engine context never cancelled after all waiters left")
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp, data := postSynthesize(t, ts.URL, `{"model":"sc","max_events":4,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d: %s", resp.StatusCode, data)
	}
	var status JobStatus
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	if status.ID == "" || status.State != JobRunning {
		t.Fatalf("bad initial job status: %+v", status)
	}

	deadline := time.Now().Add(30 * time.Second)
	for status.State == JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if status.State != JobDone {
		t.Fatalf("job state = %s (%s), want done", status.State, status.Error)
	}
	// The job's digest resolves in the suites API.
	resp2, err := http.Get(ts.URL + "/v1/suites/" + status.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("GET stored suite of done job: %d", resp2.StatusCode)
	}
}

func TestJobStreamEndsWithTerminalState(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	_, data := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3,"async":true}`)
	var status JobStatus
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var last JobStatus
	lines := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", scanner.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("stream produced no snapshots")
	}
	if last.State != JobDone {
		t.Errorf("final stream state = %s, want done", last.State)
	}
}

func TestModelsHealthzAndErrors(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []struct {
		Name   string   `json:"name"`
		Axioms []string `json:"axioms"`
	}
	err = json.NewDecoder(resp.Body).Decode(&models)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range models {
		if m.Name == "tso" && len(m.Axioms) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("models listing missing tso: %+v", models)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"model":"nope","max_events":3}`, http.StatusBadRequest},
		{`{"model":"sc","max_events":-2}`, http.StatusBadRequest},
		{`{"model":"sc","max_events":3,"format":"yaml"}`, http.StatusBadRequest},
		{`{"model":"sc","max_events":3,"bogus_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, data := postSynthesize(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s: status %d (%s), want %d", tc.body, resp.StatusCode, data, tc.want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/job-missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", resp.StatusCode)
	}
}

func TestSuiteListAndEvict(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp1, _ := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3}`)
	digest := resp1.Header.Get("X-Memsynth-Digest")

	resp, err := http.Get(ts.URL + "/v1/suites")
	if err != nil {
		t.Fatal(err)
	}
	var listed []struct {
		Digest string `json:"digest"`
		Model  string `json:"model"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listed)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].Digest != digest || listed[0].Model != "sc" {
		t.Fatalf("bad listing: %+v", listed)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/suites/"+digest, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE: %d, want 204", dresp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/suites/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after evict: %d, want 404", gresp.StatusCode)
	}
}

// TestSuiteDetect runs the fault-detection matrix over a stored TSO suite
// — the store-to-harness reuse path.
func TestSuiteDetect(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes tso at bound 4")
	}
	_, ts := newTestServer(t, t.TempDir())
	resp1, _ := postSynthesize(t, ts.URL, `{"model":"tso","max_events":4}`)
	digest := resp1.Header.Get("X-Memsynth-Digest")

	resp, err := http.Get(ts.URL + "/v1/suites/" + digest + "/detect")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Tests int `json:"tests"`
		Rows  []struct {
			Fault    string `json:"fault"`
			Detected bool   `json:"detected"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tests == 0 {
		t.Fatal("stored tso suite is empty")
	}
	if len(out.Rows) < 2 {
		t.Fatalf("detection matrix has %d rows", len(out.Rows))
	}
	// Row 0 is the correct machine: no false positives.
	if out.Rows[0].Detected {
		t.Errorf("correct machine flagged: %+v", out.Rows[0])
	}
	detected := 0
	for _, r := range out.Rows[1:] {
		if r.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Error("suite detected no seeded faults")
	}
}

// TestBackendsEndpointAndSelection covers the backend surface of the
// service: GET /v1/backends (with per-model fallback reasons), backend
// selection on POST /v1/synthesize with cross-backend cache identity, the
// per-backend request metric, request logging including the enum-fallback
// warning, and 422 rejection of unknown backend names.
func TestBackendsEndpointAndSelection(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var logs []string
	s := New(Config{Store: st, MaxJobs: 2, Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	logged := func(substr string) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range logs {
			if strings.Contains(l, substr) {
				return true
			}
		}
		return false
	}

	resp, err := http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var infos []struct {
		Name      string            `json:"name"`
		Default   bool              `json:"default"`
		Fallbacks map[string]string `json:"fallbacks"`
	}
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]struct {
		Default   bool
		Fallbacks map[string]string
	})
	for _, in := range infos {
		byName[in.Name] = struct {
			Default   bool
			Fallbacks map[string]string
		}{in.Default, in.Fallbacks}
	}
	enum, ok := byName["enum"]
	if !ok || !enum.Default || len(enum.Fallbacks) != 0 {
		t.Errorf("bad enum listing: %+v", byName)
	}
	sat, ok := byName["sat"]
	if !ok || sat.Default {
		t.Fatalf("bad sat listing: %+v", byName)
	}
	if reason := sat.Fallbacks["power"]; reason == "" {
		t.Errorf("sat backend reports no fallback reason for power: %+v", sat.Fallbacks)
	}
	if reason, ok := sat.Fallbacks["tso"]; ok {
		t.Errorf("sat backend reports fallback for natively supported tso: %q", reason)
	}

	// Backend choice must not affect the cache identity: a sat run then a
	// backend-less (enum) request for the same (model, bound) is a hit.
	resp1, suite1 := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3,"backend":"sat","format":"litmus"}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("sat POST: %d: %s", resp1.StatusCode, suite1)
	}
	if !logged("backend=sat") {
		t.Error("sat request not logged with its backend")
	}
	resp2, suite2 := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3,"format":"litmus"}`)
	if got := resp2.Header.Get("X-Memsynth-Cached"); got != "true" {
		t.Errorf("enum request after sat run: cached = %q, want true", got)
	}
	if !bytes.Equal(suite1, suite2) {
		t.Error("suites differ across backends")
	}

	// An unsupported model on the sat backend is served via enum fallback
	// — logged as a warning, never an error.
	resp3, data := postSynthesize(t, ts.URL, `{"model":"power","max_events":3,"backend":"sat"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("sat POST for power: %d: %s", resp3.StatusCode, data)
	}
	if !logged("falls back to the enum engine for model power") {
		t.Errorf("missing fallback warning; logs: %q", logs)
	}

	perBackend, ok := readMetrics(t, ts.URL)["synth_backend_requests"].(map[string]any)
	if !ok {
		t.Fatal("synth_backend_requests metric missing or not a map")
	}
	if n, _ := perBackend["sat"].(float64); n != 2 {
		t.Errorf("synth_backend_requests[sat] = %v, want 2", perBackend["sat"])
	}
	if n, _ := perBackend["enum"].(float64); n != 1 {
		t.Errorf("synth_backend_requests[enum] = %v, want 1", perBackend["enum"])
	}

	resp4, data := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3,"backend":"minisat"}`)
	if resp4.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown backend: status %d (%s), want 422", resp4.StatusCode, data)
	}
	for _, want := range []string{"minisat", "enum", "sat"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("unknown-backend error %q does not mention %q", data, want)
		}
	}
}

// TestAdmitEndpointAndMetrics covers the fast-admissibility surface of
// the service: GET /v1/admit (the per-model capability matrix), the
// admit_fast_decisions / admit_fallbacks counters, the per-request
// fallback-reason log line, cache identity across admit modes, and 400
// rejection of unknown admit modes.
func TestAdmitEndpointAndMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var logs []string
	s := New(Config{Store: st, MaxJobs: 2, Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	logged := func(substr string) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range logs {
			if strings.Contains(l, substr) {
				return true
			}
		}
		return false
	}

	resp, err := http.Get(ts.URL + "/v1/admit")
	if err != nil {
		t.Fatal(err)
	}
	var caps []struct {
		Model     string `json:"model"`
		Supported bool   `json:"supported"`
		Reason    string `json:"reason"`
	}
	err = json.NewDecoder(resp.Body).Decode(&caps)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byModel := make(map[string]struct {
		Supported bool
		Reason    string
	})
	for _, c := range caps {
		byModel[c.Model] = struct {
			Supported bool
			Reason    string
		}{c.Supported, c.Reason}
	}
	for _, name := range []string{"sc", "tso"} {
		if c := byModel[name]; !c.Supported || c.Reason != "" {
			t.Errorf("/v1/admit for %s: %+v, want supported with no reason", name, c)
		}
	}
	if c, ok := byModel["power"]; !ok || c.Supported || c.Reason == "" {
		t.Errorf("/v1/admit for power: %+v, want unsupported with a reason", c)
	}

	// A model with no algorithm falls back: counted and logged per request.
	resp1, data := postSynthesize(t, ts.URL, `{"model":"power","max_events":3}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("power POST: %d: %s", resp1.StatusCode, data)
	}
	if !logged("admit: model power falls back to exhaustive enumeration") {
		t.Errorf("missing admit fallback log; logs: %q", logs)
	}
	if n, _ := readMetrics(t, ts.URL)["admit_fallbacks"].(float64); n != 1 {
		t.Errorf("admit_fallbacks = %v, want 1", n)
	}

	// A supported model takes the fast path and accumulates fast decisions.
	resp2, data := postSynthesize(t, ts.URL, `{"model":"tso","max_events":4}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("tso POST: %d: %s", resp2.StatusCode, data)
	}
	m := readMetrics(t, ts.URL)
	if n, _ := m["admit_fast_decisions"].(float64); n <= 0 {
		t.Errorf("admit_fast_decisions = %v, want > 0 after a tso run", n)
	}
	if n, _ := m["admit_fallbacks"].(float64); n != 1 {
		t.Errorf("admit_fallbacks = %v after supported run, want still 1", n)
	}

	// The switch never shifts the cache digest: an admit-off request for
	// the same (model, bound) must hit the suite the fast run stored.
	resp3, data := postSynthesize(t, ts.URL, `{"model":"tso","max_events":4,"admit":"off"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("admit-off POST: %d: %s", resp3.StatusCode, data)
	}
	if got := resp3.Header.Get("X-Memsynth-Cached"); got != "true" {
		t.Errorf("admit-off request after fast run: cached = %q, want true", got)
	}

	resp4, data := postSynthesize(t, ts.URL, `{"model":"tso","max_events":3,"admit":"fast"}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown admit mode: status %d (%s), want 400", resp4.StatusCode, data)
	}
}

// BenchmarkServerSynthesizeCached measures the service hot path: a
// synthesize POST served from a warmed store.
func BenchmarkServerSynthesizeCached(b *testing.B) {
	_, ts := newTestServer(b, b.TempDir())
	body := `{"model":"sc","max_events":4,"format":"litmus"}`
	resp, data := postSynthesize(b, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup: %d: %s", resp.StatusCode, data)
	}
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Memsynth-Cached"); got != "true" {
			b.Fatalf("uncached response in cached benchmark (%s)", got)
		}
	}
}

// TestRaceBackendsMode pins the -race-backends contract: a cold run on
// the default backend races enum against sat, the first complete result
// wins (and is recorded in the manifest and the race_backend_wins
// metric), and the loser is cancelled rather than left running.
func TestRaceBackendsMode(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st, RaceBackends: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	// Fake both racers: "sat" completes a real engine run; the default
	// backend stalls until the race cancels it, proving the loser's
	// context is torn down.
	loserCancelled := make(chan struct{})
	s.synthFn = func(ctx context.Context, m memmodel.Model, opts synth.Options) (*synth.Result, error) {
		run := opts
		run.Backend = "" // both fakes drive the real enumerative engine
		if opts.Backend == "sat" {
			res, err := synth.SynthesizeContext(ctx, m, run)
			if err == nil {
				res.Backend = "sat"
			}
			return res, err
		}
		<-ctx.Done()
		close(loserCancelled)
		return synth.SynthesizeContext(ctx, m, run) // returns interrupted
	}

	resp, data := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	select {
	case <-loserCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("losing backend was never cancelled")
	}

	var out SynthesizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	ss, err := st.Get(out.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Backend != "sat" {
		t.Errorf("Manifest.Backend = %q, want sat (the race winner)", ss.Manifest.Backend)
	}

	metrics := readMetrics(t, ts.URL)
	wins, _ := metrics["race_backend_wins"].(map[string]any)
	if got, _ := wins["sat"].(float64); got != 1 {
		t.Errorf("race_backend_wins[sat] = %v, want 1", wins["sat"])
	}

	// A cache hit must not re-race: the winner count stays put.
	resp2, _ := postSynthesize(t, ts.URL, `{"model":"sc","max_events":3}`)
	if resp2.Header.Get("X-Memsynth-Cached") != "true" {
		t.Error("second request missed the cache")
	}
	metrics = readMetrics(t, ts.URL)
	wins, _ = metrics["race_backend_wins"].(map[string]any)
	if got, _ := wins["sat"].(float64); got != 1 {
		t.Errorf("race_backend_wins[sat] after cache hit = %v, want 1", wins["sat"])
	}

	// An explicit non-default backend bypasses the race entirely.
	s.synthFn = synth.SynthesizeContext
	resp3, data := postSynthesize(t, ts.URL, `{"model":"tso","max_events":3,"backend":"sat"}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("explicit backend: status %d: %s", resp3.StatusCode, data)
	}
	metrics = readMetrics(t, ts.URL)
	wins, _ = metrics["race_backend_wins"].(map[string]any)
	if got, _ := wins["enum"].(float64); got != 0 {
		t.Errorf("race ran for an explicit backend selection: %v", wins)
	}
}
