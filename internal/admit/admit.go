// Package admit implements per-model fast admissibility: a polynomial
// saturation check that decides, for one reads-from assignment of a
// program, whether *any* coherence order can extend it into a minimal
// litmus test. The synthesis explore phase consults it once per rf
// assignment and skips the factorial coherence-order cross-product when
// the answer is no — the regime ("How Hard is Weak-Memory Testing?",
// Chakraborty et al.; "Optimal Reads-From Consistency Checking", Tunç et
// al.) where rf-consistency is polynomial while full execution
// enumeration is not.
//
// The check is a sound refutation filter, never a decision procedure: a
// minimal execution (Definition 1) must be observable — valid under the
// full perturbed model — for *every* applicable instruction relaxation,
// each sharing the one coherence order of the execution. Saturation
// derives, per relaxation application, the coherence edges any valid
// extension is forced to contain (closure over the application's
// acyclicity graphs); a contradiction proves no coherence order is valid
// under that application, so no extension of the rf assignment is
// observable there and the whole subtree is skipped. When every
// application admits some order individually, the union of their forced
// edges must still be satisfied by the single shared order, so a cyclic
// union refutes too. Anything not refuted is enumerated and re-confirmed
// by minimal.Checker exactly as before — which is why suites and store
// digests are byte-identical with the filter on or off (DESIGN.md §15).
//
// Algorithms are registered for the builtin sc and tso models only. The
// tso check folds the store buffer into the closure: its causality graph
// (rfe ∪ co ∪ fr ∪ ppo ∪ mfence-order, with ppo = po minus write→read)
// is saturated jointly with the sc_per_loc graph over one shared forced
// coherence set, rather than enumerating coherence and fence
// permutations. Models without a registered algorithm — power, armv7,
// and every cat-compiled model, including one *named* "sc" or "tso"
// (gated on memmodel.SourceOf, not the name) — fall back to plain
// enumeration.
package admit

import (
	"fmt"
	"math/bits"
	"sort"

	"memsynth/internal/exec"
	"memsynth/internal/litmus"
	"memsynth/internal/memmodel"
	"memsynth/internal/relation"
)

// graph is one acyclicity constraint of a perturbed model, split into its
// execution-independent base edges and the rf-inclusion rule. Every
// registered graph must contain the full co and fr relations (the
// saturation rules rely on co ⊆ graph and fr ⊆ graph to justify forced
// edges).
type graph struct {
	// base holds the static edges (program-order fragments, fence
	// orderings) of the perturbed test.
	base relation.Rel
	// rfExternal restricts the rf edges folded into the graph to
	// cross-thread ones (tso causality uses rfe, not rf).
	rfExternal bool
}

// graphsFunc derives a model's acyclicity graphs from the static
// evaluation context of one relaxation application. The view is used for
// its static accessors only (it is never Reset).
type graphsFunc func(v *exec.View) []graph

// algorithms maps builtin model names to their graph builders. Only the
// acyclicity axioms appear: ignoring rmw_atomicity costs pruning power but
// never soundness (refuting a weaker axiom set still refutes the model).
var algorithms = map[string]graphsFunc{
	"sc":  scGraphs,
	"tso": tsoGraphs,
}

// scGraphs: sc_order = acyclic(com ∪ po), i.e. one graph with base po and
// all rf edges.
func scGraphs(v *exec.View) []graph {
	return []graph{{base: v.PO()}}
}

// tsoGraphs: sc_per_loc = acyclic(com ∪ po_loc) and causality =
// acyclic(rfe ∪ co ∪ fr ∪ ppo ∪ mfence-order) with ppo = po \ (W×R).
// Saturating both over one shared forced-co set is what replaces the
// store-buffer (write→read reordering) permutations.
func tsoGraphs(v *exec.View) []graph {
	ppo := v.PO().Minus(relation.Cross(v.N(), v.Writes(), v.Reads()))
	ppo.UnionWith(v.FenceRel(litmus.FMFence))
	return []graph{
		{base: v.POLoc()},
		{base: ppo, rfExternal: true},
	}
}

// Supports reports whether model m has a registered fast-admissibility
// algorithm, with a human-readable reason when it does not. Only builtin
// models qualify: a compiled model shadowing a builtin name has its own
// semantics and must take the enumeration fallback.
func Supports(m memmodel.Model) (bool, string) {
	if src, _ := memmodel.SourceOf(m); src != "builtin" {
		return false, fmt.Sprintf("model %q is %s-compiled; fast admissibility covers only the builtin native models", m.Name(), src)
	}
	if _, ok := algorithms[m.Name()]; !ok {
		return false, fmt.Sprintf("model %q has no registered fast-admissibility algorithm", m.Name())
	}
	return true, ""
}

// Capability describes one model's fast-admissibility support, for
// capability reporting (memsynthd's GET /v1/admit).
type Capability struct {
	Model     string `json:"model"`
	Supported bool   `json:"supported"`
	// Reason explains an unsupported model (empty when supported).
	Reason string `json:"reason,omitempty"`
}

// Models returns the capability matrix over the builtin models, sorted by
// name.
func Models() []Capability {
	var caps []Capability
	for _, m := range memmodel.All() {
		ok, reason := Supports(m)
		caps = append(caps, Capability{Model: m.Name(), Supported: ok, Reason: reason})
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Model < caps[j].Model })
	return caps
}

// appCtx is the per-relaxation-application static state: the perturbed
// graphs plus the live-event classification the saturation rules consult.
type appCtx struct {
	view   *exec.View
	live   relation.Set
	reads  relation.Set
	graphs []graph
	// liveWrites[a] is the set of live writes to address a.
	liveWrites []relation.Set
}

// Checker decides fast admissibility for the rf assignments of one bound
// program. Bind computes the relaxation applications' static contexts
// lazily (mirroring minimal.Checker); Decide then runs pure bitset
// saturation per assignment. A Checker is not safe for concurrent use;
// the synthesis engine gives each worker its own.
type Checker struct {
	model  memmodel.Model
	build  graphsFunc
	nAddrs int

	t    *litmus.Test
	n    int
	apps []exec.Perturb
	// order is the fail-fast try order over apps: a refuting application
	// moves to the front so the next rf assignment tries the most
	// discriminating relaxation first. Refutation is existential over
	// apps, so the order affects speed only, never the verdict — and it
	// resets at Bind, keeping per-program behavior deterministic for any
	// worker count.
	order  []int
	perApp []*appCtx

	// Saturation scratch, sized to the bound test's universe.
	fco     relation.Rel // forced coherence edges of the current app
	ffr     relation.Rel // forced from-reads edges of the current app
	cl      relation.Rel // per-graph closure
	unionCo relation.Rel // forced co edges across all apps of one Decide
}

// NewChecker returns a Checker for model m, or nil when the model has no
// registered algorithm (see Supports).
func NewChecker(m memmodel.Model) *Checker {
	if ok, _ := Supports(m); !ok {
		return nil
	}
	return &Checker{model: m, build: algorithms[m.Name()]}
}

// Bind points the checker at test t with the model's relaxation
// applications to it (as computed by memmodel.Applications — the synthesis
// engine passes minimal.Checker.Apps so the two layers always agree).
func (c *Checker) Bind(t *litmus.Test, apps []exec.Perturb) {
	c.t = t
	c.n = len(t.Events)
	c.nAddrs = t.NumAddrs()
	c.apps = apps
	c.order = c.order[:0]
	for i := range apps {
		c.order = append(c.order, i)
	}
	c.perApp = c.perApp[:0]
	for range apps {
		c.perApp = append(c.perApp, nil)
	}
	if c.fco.N() != c.n {
		c.fco = relation.New(c.n)
		c.ffr = relation.New(c.n)
		c.cl = relation.New(c.n)
		c.unionCo = relation.New(c.n)
	}
}

// appCtxFor builds application i's static context on first use.
// Construction is lazy because the fail-fast order usually refutes with
// the front application alone.
func (c *Checker) appCtxFor(i int) *appCtx {
	if c.perApp[i] == nil {
		v := exec.NewStaticCtx(c.t, c.apps[i]).NewView()
		a := &appCtx{
			view:       v,
			live:       v.Live(),
			reads:      v.Reads(),
			graphs:     c.build(v),
			liveWrites: make([]relation.Set, c.nAddrs),
		}
		for _, e := range c.t.Events {
			if e.Kind == litmus.KWrite && a.live.Has(e.ID) {
				a.liveWrites[e.Addr] = a.liveWrites[e.Addr].Add(e.ID)
			}
		}
		c.perApp[i] = a
	}
	return c.perApp[i]
}

// Decide reports whether some coherence order extending rf (indexed by
// event ID, -1 = initial) could yield a minimal execution. False is a
// proof that none can — the caller may skip every extension; true is
// merely "not refuted" and the extensions must be enumerated and checked
// as usual.
func (c *Checker) Decide(rf []int) bool {
	if c.t == nil {
		panic("admit: Decide before Bind")
	}
	c.unionCo.Clear()
	for pos := 0; pos < len(c.order); pos++ {
		ai := c.order[pos]
		if c.saturate(c.appCtxFor(ai), rf) {
			copy(c.order[1:pos+1], c.order[:pos])
			c.order[0] = ai
			return false
		}
		c.unionCo.UnionWith(c.fco)
	}
	// Each application admits some coherence order on its own, but a
	// minimal execution carries a single order valid under all of them,
	// which must contain every forced edge at once.
	if len(c.apps) > 1 && !c.unionCo.Acyclic() {
		return false
	}
	return true
}

// saturate runs the closure fixpoint for one application and reports
// whether it refutes the rf assignment (no coherence order satisfies the
// application's acyclicity graphs). On a false return c.fco holds the
// edges every satisfying order must contain.
func (c *Checker) saturate(a *appCtx, rf []int) bool {
	c.fco.Clear()
	c.ffr.Clear()

	// An initial (non-orphaned) read is from-reads-before every live write
	// to its address, for every coherence order.
	for m := a.reads; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(uint64(m))
		if rf[r] < 0 {
			c.ffr.UnionRow(r, a.liveWrites[c.t.Events[r].Addr])
		}
	}

	for {
		progress := false
		for _, g := range a.graphs {
			// Lower bound on the graph of any satisfying execution: static
			// base, the rf edges the graph includes, and everything forced
			// so far.
			c.cl.CopyFrom(g.base)
			for m := a.reads; m != 0; m &= m - 1 {
				r := bits.TrailingZeros64(uint64(m))
				src := rf[r]
				if src < 0 || !a.live.Has(src) {
					continue // initial or orphaned (source removed by RI)
				}
				if g.rfExternal && !a.view.Ext().Has(src, r) {
					continue
				}
				c.cl.Add(src, r)
			}
			c.cl.UnionWith(c.fco)
			c.cl.UnionWith(c.ffr)
			c.cl.CloseIn()
			if !c.cl.Irreflexive() {
				return true // forced edges already close a cycle
			}

			// (ww) A path w1 →+ w2 between live same-address writes forces
			// co(w1, w2): the opposite orientation would put the co edge
			// w2→w1 on the path's cycle.
			for addr := 0; addr < c.nAddrs; addr++ {
				ws := a.liveWrites[addr]
				if ws.Size() < 2 {
					continue
				}
				for m1 := ws; m1 != 0; m1 &= m1 - 1 {
					w1 := bits.TrailingZeros64(uint64(m1))
					reach := c.cl.Successors(w1).Intersect(ws).Remove(w1)
					for m2 := reach; m2 != 0; m2 &= m2 - 1 {
						w2 := bits.TrailingZeros64(uint64(m2))
						ok, p := c.force(a, rf, w1, w2)
						if !ok {
							return true
						}
						progress = progress || p
					}
				}
			}

			for m := a.reads; m != 0; m &= m - 1 {
				r := bits.TrailingZeros64(uint64(m))
				src := rf[r]
				if src < 0 || !a.live.Has(src) {
					continue
				}
				rfInGraph := !g.rfExternal || a.view.Ext().Has(src, r)
				for mw := a.liveWrites[c.t.Events[r].Addr].Remove(src); mw != 0; mw &= mw - 1 {
					w := bits.TrailingZeros64(uint64(mw))
					// (wr) A path w →+ r forces co(w, src): co(src, w)
					// would derive fr(r, w), closing the cycle w →+ r → w.
					if c.cl.Has(w, r) {
						ok, p := c.force(a, rf, w, src)
						if !ok {
							return true
						}
						progress = progress || p
					}
					// (rw) A path r →+ w forces co(src, w) when the graph
					// contains the rf edge src → r: co(w, src) would close
					// the cycle r →+ w → src → r.
					if rfInGraph && c.cl.Has(r, w) {
						ok, p := c.force(a, rf, src, w)
						if !ok {
							return true
						}
						progress = progress || p
					}
				}
			}
		}
		if !progress {
			return false
		}
	}
}

// force records the forced edge co(w1, w2), propagating the from-reads
// edges it implies (every read of w1 is fr-before w2). It reports
// (consistent, progress): consistent is false when the opposite
// orientation was already forced — the contradiction that refutes the rf
// assignment.
func (c *Checker) force(a *appCtx, rf []int, w1, w2 int) (bool, bool) {
	if c.fco.Has(w1, w2) {
		return true, false
	}
	if c.fco.Has(w2, w1) {
		return false, false
	}
	c.fco.Add(w1, w2)
	for m := a.reads; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(uint64(m))
		if rf[r] == w1 {
			c.ffr.Add(r, w2)
		}
	}
	return true, true
}
