package admit_test

// Admit benchmark rows for BENCH_synth.json: `make bench` runs this test
// after the synth snapshot and the satgen backend rows, merging an
// "admit_cases" section that measures the fast-admissibility filter on
// the enumeration engine's worst regime — single-address tso programs,
// whose factorially many coherence orders the filter prunes wholesale
// whenever saturation refutes the reads-from assignment above them.
//
// The headline case is tso bound 8 with one address: exhaustive
// enumeration cannot finish it within the bench timeout (see the enum
// row in backend_cases), while the same enumeration engine with the
// filter on completes — that completion is asserted, not just recorded.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"memsynth/internal/memmodel"
	"memsynth/internal/synth"
)

// admitBenchTimeout matches the satgen backend bench timeout so the
// admit-on rows are directly comparable with the enum/sat rows.
const admitBenchTimeout = 150 * time.Second

type admitCase struct {
	Model    string `json:"model"`
	Bound    int    `json:"bound"`
	MaxAddrs int    `json:"max_addrs,omitempty"`
	Admit    string `json:"admit"`

	ElapsedNS int64 `json:"elapsed_ns"`
	TimeoutNS int64 `json:"timeout_ns"`
	// Completed is false when the run hit the bench timeout and returned
	// a partial suite (Stats.Interrupted).
	Completed      bool `json:"completed"`
	Programs       int  `json:"programs"`
	Executions     int  `json:"executions"`
	ExecutionsFast int  `json:"executions_fast"`
	Entries        int  `json:"union_entries"`
}

func runAdmitCase(t *testing.T, model string, bound, maxAddrs int, mode string) admitCase {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), admitBenchTimeout)
	defer cancel()
	start := time.Now()
	res, err := synth.SynthesizeContext(ctx, m, synth.Options{
		MaxEvents: bound,
		MaxAddrs:  maxAddrs,
		Admit:     mode,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("%s/admit=%s@%d: %v", model, mode, bound, err)
	}
	label := mode
	if label == "" {
		label = "auto"
	}
	c := admitCase{
		Model: model, Bound: bound, MaxAddrs: maxAddrs, Admit: label,
		ElapsedNS: elapsed.Nanoseconds(), TimeoutNS: admitBenchTimeout.Nanoseconds(),
		Completed:      !res.Stats.Interrupted,
		Programs:       res.Stats.Programs,
		Executions:     res.Stats.Executions,
		ExecutionsFast: res.Stats.ExecutionsFast,
		Entries:        len(res.Union.Entries),
	}
	t.Logf("%s@%d addrs=%d admit=%s: %v completed=%v programs=%d execs=%d fast=%d tests=%d",
		model, bound, maxAddrs, label, elapsed.Round(time.Millisecond),
		c.Completed, c.Programs, c.Executions, c.ExecutionsFast, c.Entries)
	return c
}

// TestBenchAdmit merges admit rows into the BENCH_JSON file written by
// the synth package's snapshot (skipped when BENCH_JSON is unset, so a
// plain `go test` never runs minute-scale benchmarks).
func TestBenchAdmit(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; run via `make bench`")
	}
	short := os.Getenv("BENCH_SHORT") != ""

	var cases []admitCase
	if short {
		for _, mode := range []string{"off", "auto"} {
			cases = append(cases, runAdmitCase(t, "tso", 6, 1, mode))
		}
	} else {
		// Shared completion point: both modes finish, rows comparable.
		for _, mode := range []string{"off", "auto"} {
			cases = append(cases, runAdmitCase(t, "tso", 7, 1, mode))
		}
		// Headline point: plain enumeration hits the bench timeout (the
		// backend_cases enum row), the filtered enumeration must complete.
		fast8 := runAdmitCase(t, "tso", 8, 1, "auto")
		cases = append(cases, fast8)
		if !fast8.Completed {
			t.Errorf("tso@8 with fast admissibility hit the bench timeout (%v); the filter regressed",
				time.Duration(fast8.ElapsedNS))
		}
		if fast8.ExecutionsFast == 0 {
			t.Error("tso@8 with fast admissibility pruned nothing")
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("BENCH_JSON must exist (run the synth snapshot first): %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parse %s: %v", out, err)
	}
	snap["admit_cases"] = cases
	merged, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	merged = append(merged, '\n')
	if err := os.WriteFile(out, merged, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("merged %d admit cases into %s\n", len(cases), out)
}
