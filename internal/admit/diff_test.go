// Package admit_test holds the admit-on vs admit-off differential gate.
// It lives in an external test package because it compares stored suites
// (internal/store imports internal/synth, which imports admit — an
// in-package test importing store would close that cycle).
package admit_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"memsynth/internal/admit"
	"memsynth/internal/cat"
	"memsynth/internal/memmodel"
	"memsynth/internal/store"
	"memsynth/internal/synth"
)

func runAdmit(t *testing.T, m memmodel.Model, mode string, bound int) *synth.Result {
	t.Helper()
	opts := synth.Options{MaxEvents: bound, Admit: mode, Workers: 2}
	res, err := synth.SynthesizeContext(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("%s/admit=%s@%d: %v", m.Name(), mode, bound, err)
	}
	if res.Stats.Interrupted {
		t.Fatalf("%s/admit=%s@%d: interrupted", m.Name(), mode, bound)
	}
	return res
}

// requireIdentical asserts the two results encode to byte-identical stored
// suites under the same digest, and that the admit run's execution
// accounting adds back up to the exhaustive count.
func requireIdentical(t *testing.T, m memmodel.Model, bound int, on, off *synth.Result) {
	t.Helper()
	se, err := store.Encode(on)
	if err != nil {
		t.Fatalf("encode admit-on: %v", err)
	}
	so, err := store.Encode(off)
	if err != nil {
		t.Fatalf("encode admit-off: %v", err)
	}
	if se.Manifest.Digest != so.Manifest.Digest {
		t.Errorf("%s@%d: digests differ: admit-on %s, admit-off %s",
			m.Name(), bound, se.Manifest.Digest, so.Manifest.Digest)
	}
	if len(se.Texts) != len(so.Texts) {
		t.Fatalf("%s@%d: suite count differs: admit-on %d, admit-off %d",
			m.Name(), bound, len(se.Texts), len(so.Texts))
	}
	for name, wantText := range so.Texts {
		gotText, ok := se.Texts[name]
		if !ok {
			t.Fatalf("%s@%d: admit-on result missing suite %q", m.Name(), bound, name)
		}
		if gotText != wantText {
			t.Errorf("%s@%d: suite %q text differs between admit modes", m.Name(), bound, name)
		}
		if !reflect.DeepEqual(se.Manifest.Suites[name].Entries, so.Manifest.Suites[name].Entries) {
			t.Errorf("%s@%d: suite %q manifest entries differ between admit modes", m.Name(), bound, name)
		}
	}
	if off.Stats.ExecutionsFast != 0 {
		t.Errorf("%s@%d: admit-off reports %d fast-decided executions",
			m.Name(), bound, off.Stats.ExecutionsFast)
	}
	if off.Admit != "off" {
		t.Errorf("%s@%d: admit-off Result.Admit = %q, want off", m.Name(), bound, off.Admit)
	}
	// On a completed run the admit path must account for every execution
	// the exhaustive path enumerates: checked plus fast-decided.
	if got := on.Stats.Executions + on.Stats.ExecutionsFast; got != off.Stats.Executions {
		t.Errorf("%s@%d: admit-on enumerated %d + fast %d = %d executions, admit-off enumerated %d",
			m.Name(), bound, on.Stats.Executions, on.Stats.ExecutionsFast, got, off.Stats.Executions)
	}
}

// TestAdmitDifferentialNative: models with a registered closure algorithm
// must take the fast path, prune a nonzero share of the execution space,
// and still produce byte-identical suites and digests.
func TestAdmitDifferentialNative(t *testing.T) {
	bound := 5
	if testing.Short() {
		bound = 4
	}
	for _, name := range []string{"sc", "tso"} {
		m, err := memmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ok, reason := admit.Supports(m); !ok {
			t.Fatalf("expected fast admissibility for %s, got fallback: %s", name, reason)
		}
		on := runAdmit(t, m, "", bound)
		off := runAdmit(t, m, "off", bound)
		if on.Admit != "fast" {
			t.Errorf("%s@%d: Result.Admit = %q, want fast", name, bound, on.Admit)
		}
		if on.Stats.ExecutionsFast == 0 {
			t.Errorf("%s@%d: fast path decided nothing (ExecutionsFast = 0)", name, bound)
		}
		requireIdentical(t, m, bound, on, off)
	}
}

// TestAdmitDifferentialAllBuiltins covers every builtin at a small bound:
// models without a closure algorithm must fall back to full enumeration
// (Result.Admit = "off" even when requested) and stay byte-identical.
func TestAdmitDifferentialAllBuiltins(t *testing.T) {
	for _, m := range memmodel.All() {
		on := runAdmit(t, m, "auto", 3)
		off := runAdmit(t, m, "off", 3)
		supported, reason := admit.Supports(m)
		if supported {
			if on.Admit != "fast" {
				t.Errorf("%s: Result.Admit = %q, want fast", m.Name(), on.Admit)
			}
		} else {
			if reason == "" {
				t.Errorf("%s: unsupported with empty reason", m.Name())
			}
			if on.Admit != "off" {
				t.Errorf("%s: Result.Admit = %q for unsupported model, want off", m.Name(), on.Admit)
			}
			if on.Stats.ExecutionsFast != 0 {
				t.Errorf("%s: unsupported model reports %d fast-decided executions",
					m.Name(), on.Stats.ExecutionsFast)
			}
		}
		requireIdentical(t, m, 3, on, off)
	}
}

// TestAdmitDifferentialCatModels compiles the example cat definitions.
// Definition-language models must always fall back — including sc.cat and
// tso.cat, whose names collide with the builtins that do have algorithms;
// the gate is the model's provenance, not its name.
func TestAdmitDifferentialCatModels(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "cat", "*.cat"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example cat models found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cat.Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if ok, reason := admit.Supports(m); ok {
			t.Fatalf("%s: expected fallback for cat-compiled model %q, got fast admissibility", f, m.Name())
		} else if reason == "" {
			t.Fatalf("%s: fallback with empty reason", f)
		}
		on := runAdmit(t, m, "", 4)
		if on.Admit != "off" {
			t.Errorf("%s: Result.Admit = %q for cat model, want off", f, on.Admit)
		}
		requireIdentical(t, m, 4, on, runAdmit(t, m, "off", 4))
	}
}

// TestAdmitDifferentialWorkers: the fast path's accounting and output are
// independent of worker count (the filter is per-assignment, so sharding
// the program stream cannot change what is pruned).
func TestAdmitDifferentialWorkers(t *testing.T) {
	m, err := memmodel.ByName("tso")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := synth.SynthesizeContext(context.Background(), m, synth.Options{MaxEvents: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := synth.SynthesizeContext(context.Background(), m, synth.Options{MaxEvents: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Executions != par.Stats.Executions || seq.Stats.ExecutionsFast != par.Stats.ExecutionsFast {
		t.Errorf("execution accounting depends on workers: 1 worker (%d, %d fast), 4 workers (%d, %d fast)",
			seq.Stats.Executions, seq.Stats.ExecutionsFast, par.Stats.Executions, par.Stats.ExecutionsFast)
	}
	ds, err := store.Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := store.Encode(par)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Manifest.Digest != dp.Manifest.Digest {
		t.Errorf("digest depends on workers with admit on: %s vs %s", ds.Manifest.Digest, dp.Manifest.Digest)
	}
}

// TestAdmitDigestIndependence proves the Admit switch never shifts a store
// digest, Normalize strips it, and Validate rejects unknown modes.
func TestAdmitDigestIndependence(t *testing.T) {
	m, err := memmodel.ByName("tso")
	if err != nil {
		t.Fatal(err)
	}
	base := synth.Options{MaxEvents: 4}
	withOff := base
	withOff.Admit = "off"
	if store.DigestModel(m, base) != store.DigestModel(m, withOff) {
		t.Error("Options.Admit changed the store digest")
	}
	if got := withOff.Normalize().Admit; got != "" {
		t.Errorf("Normalize kept Admit = %q", got)
	}
	bad := base
	bad.Admit = "fast"
	err = bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted unknown admit mode")
	}
	for _, want := range []string{"fast", "auto", "off"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-admit error %q does not mention %q", err, want)
		}
	}
}
