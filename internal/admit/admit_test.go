package admit

import (
	"testing"

	"memsynth/internal/exec"
	"memsynth/internal/litmus"
	"memsynth/internal/memmodel"
	"memsynth/internal/minimal"
	"memsynth/internal/randgen"
)

func TestSupports(t *testing.T) {
	want := map[string]bool{
		"sc": true, "tso": true,
		"power": false, "armv7": false, "armv8": false,
		"scc": false, "c11": false, "hsa": false,
	}
	for name, supported := range want {
		m, err := memmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ok, reason := Supports(m)
		if ok != supported {
			t.Errorf("Supports(%s) = %v, want %v (%s)", name, ok, supported, reason)
		}
		if !ok && reason == "" {
			t.Errorf("Supports(%s): unsupported with empty reason", name)
		}
		if ok && reason != "" {
			t.Errorf("Supports(%s): supported with reason %q", name, reason)
		}
		if (NewChecker(m) != nil) != supported {
			t.Errorf("NewChecker(%s) nil-ness disagrees with Supports", name)
		}
	}
}

func TestModelsCapabilityMatrix(t *testing.T) {
	caps := Models()
	if len(caps) != len(memmodel.All()) {
		t.Fatalf("Models() returned %d capabilities, want %d", len(caps), len(memmodel.All()))
	}
	supported := 0
	for i, c := range caps {
		if i > 0 && caps[i-1].Model >= c.Model {
			t.Errorf("Models() not sorted: %q before %q", caps[i-1].Model, c.Model)
		}
		if c.Supported {
			supported++
			if c.Reason != "" {
				t.Errorf("%s: supported with reason %q", c.Model, c.Reason)
			}
		} else if c.Reason == "" {
			t.Errorf("%s: unsupported with empty reason", c.Model)
		}
	}
	if supported != 2 {
		t.Errorf("Models() reports %d supported models, want 2 (sc, tso)", supported)
	}
}

// pinnedCases holds (model, seed) pairs that once produced a
// counterexample in TestDecideAgreesWithEnumeration, so every regression
// stays covered. A failure prints the pair to add here.
var pinnedCases = []struct {
	model string
	seed  int64
}{}

// TestDecideAgreesWithEnumeration is the randomized differential property
// behind the byte-identity guarantee: for random programs, every
// reads-from assignment Decide refutes must contain no minimal execution
// among its enumerated extensions — checked execution-for-execution
// against exec.Enumerate + minimal.Checker. It also demands the filter is
// not vacuous (something is refuted across the corpus).
func TestDecideAgreesWithEnumeration(t *testing.T) {
	type caseID struct {
		model string
		seed  int64
	}
	var cases []caseID
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for _, name := range []string{"sc", "tso"} {
		for seed := int64(1); seed <= seeds; seed++ {
			cases = append(cases, caseID{name, seed})
		}
	}
	for _, p := range pinnedCases {
		cases = append(cases, caseID{p.model, p.seed})
	}

	totalRefutedRF := 0
	for _, tc := range cases {
		m, err := memmodel.ByName(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		adm := NewChecker(m)
		if adm == nil {
			t.Fatalf("no checker for supported model %s", tc.model)
		}
		tt := randgen.New(m, randgen.Options{MaxEvents: 5}, tc.seed).Test()
		checker := minimal.NewChecker(m)
		checker.Bind(tt)
		adm.Bind(tt, checker.Apps())

		refuted := false
		exec.Enumerate(tt, exec.EnumerateOptions{
			RFFilter: func(rf []int) bool {
				refuted = !adm.Decide(rf)
				if refuted {
					totalRefutedRF++
				}
				return true // descend regardless; every extension is re-checked
			},
		}, func(x *exec.Execution) bool {
			if refuted && len(checker.Check(x).MinimalFor()) > 0 {
				t.Fatalf("%s seed %d: refuted rf %v contains a minimal execution (co=%v) — pin {%q, %d} in pinnedCases",
					tc.model, tc.seed, x.RF, x.CO, tc.model, tc.seed)
			}
			return true
		})
	}
	if totalRefutedRF == 0 {
		t.Error("filter refuted nothing across the whole random corpus; the fast path is vacuous")
	}
}

// TestDecideDeterministic: the verdict for one rf assignment must not
// depend on the order assignments are presented in (the fail-fast
// move-to-front ordering may only change speed, never answers).
func TestDecideDeterministic(t *testing.T) {
	m, err := memmodel.ByName("tso")
	if err != nil {
		t.Fatal(err)
	}
	tt := randgen.New(m, randgen.Options{MaxEvents: 6}, 7).Test()
	apps := memmodel.Applications(m, tt)

	var rfs [][]int
	verdicts := make(map[int]bool)
	adm := NewChecker(m)
	adm.Bind(tt, apps)
	exec.Enumerate(tt, exec.EnumerateOptions{
		RFFilter: func(rf []int) bool {
			rfs = append(rfs, append([]int(nil), rf...))
			verdicts[len(rfs)-1] = adm.Decide(rf)
			return false // rf sweep only
		},
	}, func(*exec.Execution) bool { return true })

	fresh := NewChecker(m)
	fresh.Bind(tt, apps)
	for i := len(rfs) - 1; i >= 0; i-- { // reversed presentation order
		if got := fresh.Decide(rfs[i]); got != verdicts[i] {
			t.Fatalf("rf %v: verdict %v in forward order, %v reversed", rfs[i], verdicts[i], got)
		}
	}
}

// benchmarkAdmit measures the explore work for a corpus of random
// programs: the fast path (Decide per rf assignment, enumerating only
// admitted subtrees) against plain exhaustive enumeration, both applying
// the full minimality criterion to every visited execution.
func benchmarkAdmit(b *testing.B, model string, bound int, fast bool) {
	m, err := memmodel.ByName(model)
	if err != nil {
		b.Fatal(err)
	}
	var tests []*litmus.Test
	for seed := int64(1); seed <= 10; seed++ {
		tests = append(tests, randgen.New(m, randgen.Options{MaxEvents: bound}, seed).Test())
	}
	checker := minimal.NewChecker(m)
	adm := NewChecker(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tt := range tests {
			checker.Bind(tt)
			opts := exec.EnumerateOptions{}
			if fast {
				adm.Bind(tt, checker.Apps())
				opts.RFFilter = adm.Decide
			}
			exec.Enumerate(tt, opts, func(x *exec.Execution) bool {
				checker.Check(x)
				return true
			})
		}
	}
}

func BenchmarkAdmitFastSC5(b *testing.B)  { benchmarkAdmit(b, "sc", 5, true) }
func BenchmarkAdmitEnumSC5(b *testing.B)  { benchmarkAdmit(b, "sc", 5, false) }
func BenchmarkAdmitFastTSO5(b *testing.B) { benchmarkAdmit(b, "tso", 5, true) }
func BenchmarkAdmitEnumTSO5(b *testing.B) { benchmarkAdmit(b, "tso", 5, false) }
func BenchmarkAdmitFastTSO7(b *testing.B) { benchmarkAdmit(b, "tso", 7, true) }
func BenchmarkAdmitEnumTSO7(b *testing.B) { benchmarkAdmit(b, "tso", 7, false) }
