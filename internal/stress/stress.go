// Package stress executes litmus tests natively on the host — the
// litmus7-style closing of the loop from synthesized suites to real
// hardware. Where package tsosim explores an abstract machine exhaustively
// and package exec enumerates candidate executions symbolically, stress
// actually runs the test: each thread becomes a goroutine pinned to an OS
// thread, its instructions compiled to closures over a preallocated,
// cache-line-padded shared-memory arena, and many iterations are executed
// in batches with randomized start-skew and sense-reversing barriers to
// shake out real interleavings. The product is an outcome histogram keyed
// by the same observable vector the rest of the system uses (reads-from
// per read plus final write per address — the projection of
// exec.OutcomeConds and tsosim.Outcome.Key), so observed outcomes flow
// directly into the model cross-check and fault-detection harness.
//
// Two compile modes trade soundness against sensitivity:
//
//   - ModeAtomic maps every access to sync/atomic operations. Go's
//     atomics are sequentially consistent, so every observed outcome is a
//     real interleaving — a subset of what any implemented model allows.
//     Atomic runs are race-detector-clean and safe to gate CI on: a
//     model-forbidden outcome under ModeAtomic is a genuine bug (in the
//     model, the engine, or the host).
//   - ModePlain keeps OPlain accesses as ordinary loads and stores. The
//     compiler and the hardware are free to reorder them, so plain runs
//     can exhibit genuinely relaxed outcomes (store buffering on x86, and
//     more on weaker hosts). Plain runs are intentionally racy: they are
//     refused under the race detector, and an outcome outside the model's
//     allowed set is an observation about the host, not a soundness bug.
//
// Ordered accesses (acquire/release/SC) and RMW pairs use sync/atomic in
// both modes; fences compile to a full barrier (an atomic exchange on a
// thread-private sink), which is conservative for weak fence kinds and
// exact for mfence/sync/SC fences on the hosts Go targets. Scopes are
// ignored: the host is one scope. Syntactic dependencies are preserved
// through an opaque value-folding helper so the compiler cannot break
// addr/data/ctrl chains in plain mode.
package stress

import (
	"context"
	"fmt"
	"sort"
	"time"

	"memsynth/internal/litmus"
	"memsynth/internal/tsosim"
)

// Mode selects the compile scheme.
type Mode uint8

const (
	// ModeAtomic compiles every access to sync/atomic — race-clean and
	// sound (observed outcomes are real interleavings).
	ModeAtomic Mode = iota
	// ModePlain keeps plain accesses unsynchronized — surfaces real
	// compiler/hardware reorderings; never run under the race detector.
	ModePlain
)

func (m Mode) String() string {
	switch m {
	case ModeAtomic:
		return "atomic"
	case ModePlain:
		return "plain"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode parses "atomic" or "plain".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "atomic":
		return ModeAtomic, nil
	case "plain":
		return ModePlain, nil
	}
	return 0, fmt.Errorf("stress: unknown mode %q (want atomic or plain)", s)
}

// Defaults for Options fields left zero.
const (
	DefaultIterations = 4096
	DefaultBatch      = 256
	DefaultMaxSkew    = 128
)

// Options configures a stress run.
type Options struct {
	// Mode is the compile scheme (default ModeAtomic).
	Mode Mode
	// Iterations is the total iteration count per test (default
	// DefaultIterations).
	Iterations int
	// Batch is the number of iterations per arena batch (default
	// DefaultBatch; capped to Iterations).
	Batch int
	// Seed seeds the shuffle order and per-thread start-skew. Zero picks
	// a time-derived seed; the seed actually used is recorded in
	// Report.Seed either way, so any run can be replayed.
	Seed int64
	// MaxSkew bounds the randomized per-thread start delay, in spin
	// iterations (default DefaultMaxSkew; negative disables skew).
	MaxSkew int
	// Progress, when non-nil, receives a snapshot after each batch.
	Progress func(Progress)
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = DefaultIterations
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	if o.Batch > o.Iterations {
		o.Batch = o.Iterations
	}
	if o.MaxSkew == 0 {
		o.MaxSkew = DefaultMaxSkew
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano() | 1
	}
	return o
}

// Progress is one per-batch progress observation.
type Progress struct {
	// Test is the test name.
	Test string
	// Iterations counts iterations executed so far; Total is the target.
	Iterations, Total int64
	// Outcomes counts distinct outcomes observed so far.
	Outcomes int
	// Elapsed is wall-clock time since the run started.
	Elapsed time.Duration
}

// OutcomeCount is one row of the observed-outcome histogram.
type OutcomeCount struct {
	// Key is the canonical outcome key (tsosim.Outcome.Key of Outcome).
	Key string `json:"key"`
	// Outcome is the observable vector: reads-from source per event
	// (entries for non-reads are -1) and final write per address.
	Outcome tsosim.Outcome `json:"outcome"`
	// Count is the number of iterations that produced this outcome.
	Count int64 `json:"count"`
	// Allowed reports whether the model's allowed set contains this
	// outcome. Meaningful only when the report has been cross-checked
	// (Report.Checked).
	Allowed bool `json:"allowed,omitempty"`
}

// StageTimes breaks a run down by stage, in the style of synth.StageTimes.
type StageTimes struct {
	// Compile is test validation plus closure compilation.
	Compile time.Duration `json:"compile_ns"`
	// Run is the concurrent execution of all batches.
	Run time.Duration `json:"run_ns"`
	// Collect is outcome decoding and histogram maintenance.
	Collect time.Duration `json:"collect_ns"`
}

// Report is the result of stress-executing one test.
type Report struct {
	// Test is the test name; Mode and Seed replay the run.
	Test string `json:"test"`
	Mode string `json:"mode"`
	Seed int64  `json:"seed"`
	// Threads is the goroutine count, Batch the arena batch size.
	Threads int `json:"threads"`
	Batch   int `json:"batch"`
	// Iterations is the number of iterations actually executed (less than
	// requested only when the run was cancelled between batches).
	Iterations int64 `json:"iterations"`
	// Interrupted reports a run cancelled before all iterations executed.
	Interrupted bool `json:"interrupted,omitempty"`
	// Elapsed is total wall-clock time; Stages the per-stage breakdown.
	Elapsed time.Duration `json:"elapsed_ns"`
	Stages  StageTimes    `json:"stages"`
	// Outcomes is the histogram, sorted by descending count then key.
	Outcomes []OutcomeCount `json:"outcomes"`
	// Corrupt counts iterations whose decoded outcome referenced no known
	// write token (impossible on aligned int64 hosts; kept as a tripwire
	// for torn accesses).
	Corrupt int64 `json:"corrupt,omitempty"`
	// Checked reports that a model cross-check filled the Allowed flags
	// and Unexplained (package harness does this).
	Checked bool `json:"checked,omitempty"`
	// Unexplained counts iterations whose outcome is absent from the
	// model's allowed set — observed-but-unlisted behavior. Zero until
	// cross-checked.
	Unexplained int64 `json:"unexplained,omitempty"`
}

// MachineOutcomes projects the histogram onto the outcome-set shape the
// testing harness consumes (harness.Machine's return type).
func (r *Report) MachineOutcomes() map[string]tsosim.Outcome {
	out := make(map[string]tsosim.Outcome, len(r.Outcomes))
	for _, oc := range r.Outcomes {
		out[oc.Key] = oc.Outcome
	}
	return out
}

// IterationsPerSecond is the run-stage throughput.
func (r *Report) IterationsPerSecond() float64 {
	if r.Stages.Run <= 0 {
		return 0
	}
	return float64(r.Iterations) / r.Stages.Run.Seconds()
}

// sortOutcomes fixes the histogram order: descending count, then key.
func (r *Report) sortOutcomes() {
	sort.Slice(r.Outcomes, func(i, j int) bool {
		if r.Outcomes[i].Count != r.Outcomes[j].Count {
			return r.Outcomes[i].Count > r.Outcomes[j].Count
		}
		return r.Outcomes[i].Key < r.Outcomes[j].Key
	})
}

// Run stress-executes t with opts. See RunContext.
func Run(t *litmus.Test, opts Options) (*Report, error) {
	return RunContext(context.Background(), t, opts)
}

// RunContext stress-executes t, honoring ctx between batches: a cancelled
// run returns the partial report with Interrupted set (and a nil error —
// partial histograms are still observations).
func RunContext(ctx context.Context, t *litmus.Test, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Mode == ModePlain && RaceEnabled {
		return nil, ErrPlainUnderRace
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	ct, err := compile(t, opts.Mode)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Test:    t.Name,
		Mode:    opts.Mode.String(),
		Seed:    opts.Seed,
		Threads: ct.numThreads,
		Batch:   opts.Batch,
	}
	rep.Stages.Compile = time.Since(t0)
	if err := run(ctx, ct, opts, rep, t0); err != nil {
		return nil, err
	}
	rep.sortOutcomes()
	rep.Elapsed = time.Since(t0)
	return rep, nil
}
