package stress

// Seeded randomness for shuffle order and start-skew. A tiny splitmix64
// keeps the package dependency-free and — more importantly — makes every
// scheduling decision a pure function of (seed, stream, step), so a run's
// shuffle order and skew sequence replay exactly from Report.Seed.

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a splitmix64 stream. Distinct streams (per thread, per batch)
// derive from the same seed without correlation by hashing the stream ID
// into the initial state.
type rng struct{ state uint64 }

func newRNG(seed int64, stream uint64) *rng {
	return &rng{state: splitmix64(uint64(seed) ^ splitmix64(stream))}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return splitmix64(r.state)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// permFill writes a seeded Fisher-Yates permutation of [0, len(perm))
// into perm — the iteration→arena-slot shuffle of one batch. Every
// thread of a batch uses the same permutation (the coordinator computes
// it once), so threads contend on the same slot while the memory access
// pattern varies batch to batch.
func permFill(perm []int, seed int64, batch int) {
	for i := range perm {
		perm[i] = i
	}
	r := newRNG(seed, uint64(5)<<32|uint64(uint32(batch)))
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
}
