package stress

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memsynth/internal/tsosim"
)

// ErrPlainUnderRace rejects ModePlain in race-instrumented binaries:
// plain mode's unsynchronized accesses are the point of the mode, but the
// race detector (correctly) reports them, so the combination is refused
// rather than producing a wall of expected reports.
var ErrPlainUnderRace = errors.New(
	"stress: plain mode is deliberately racy and cannot run under the race detector (use atomic mode)")

// senseBarrier is a sense-reversing spin barrier for the worker threads.
// Each iteration of a batch starts behind one wait, keeping the threads
// temporally aligned so their accesses actually contend. Spinning yields
// to the scheduler after a bounded number of polls so the barrier makes
// progress even with more threads than cores.
type senseBarrier struct {
	n     int32
	count int32
	sense uint32
}

func (b *senseBarrier) wait(local *uint32) {
	s := *local ^ 1
	*local = s
	if atomic.AddInt32(&b.count, 1) == b.n {
		atomic.StoreInt32(&b.count, 0)
		atomic.StoreUint32(&b.sense, s)
		return
	}
	for spins := 0; atomic.LoadUint32(&b.sense) != s; spins++ {
		if spins >= 512 {
			runtime.Gosched()
			spins = 0
		}
	}
}

// spinN burns roughly n loop iterations, accumulating into the context so
// the loop has an observable effect the compiler must keep.
func spinN(c *threadCtx, n int) {
	for i := 0; i < n; i++ {
		c.spin += int64(i)
	}
}

// run executes all batches of a stress run and fills rep. Threads are
// spawned once and reused across batches; the coordinator (the calling
// goroutine) prepares each batch, releases the threads, waits, and
// collects the batch's outcomes.
func run(ctx context.Context, ct *compiled, opts Options, rep *Report, t0 time.Time) error {
	batch := opts.Batch
	addrWords := ct.numAddrs * slotWords
	// One trailing slot of padding so the last slot's line is not shared
	// with whatever the allocator places next.
	arena := make([]int64, batch*addrWords+slotWords)
	readsPerIter := len(ct.reads)
	rec := make([]int64, batch*readsPerIter+slotWords)
	perm := make([]int, batch)

	// Per-batch handoff: curIters is written by the coordinator before
	// the start signals (the channel send publishes it), and wg releases
	// the coordinator when every thread finished the batch.
	var curIters int
	var wg sync.WaitGroup
	bar := &senseBarrier{n: int32(ct.numThreads)}
	starts := make([]chan struct{}, ct.numThreads)
	for th := range starts {
		starts[th] = make(chan struct{})
	}

	for th := 0; th < ct.numThreads; th++ {
		th := th
		ops := ct.threads[th]
		// Column offsets of this thread's reads in the record block.
		var myReads []int // event IDs
		var myCols []int
		for _, id := range ct.test.Thread(th) {
			if col := ct.readCol[id]; col >= 0 {
				myReads = append(myReads, id)
				myCols = append(myCols, col)
			}
		}
		go func() {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			c := &threadCtx{arena: arena, regs: make([]int64, ct.test.NumEvents())}
			r := newRNG(opts.Seed, 0x7ead<<16|uint64(th))
			var sense uint32
			for range starts[th] {
				iters := curIters
				for k := 0; k < iters; k++ {
					bar.wait(&sense)
					if opts.MaxSkew > 0 {
						spinN(c, r.intn(opts.MaxSkew+1))
					}
					slot := perm[k]
					c.base = slot * addrWords
					for _, f := range ops {
						f(c)
					}
					ro := slot * readsPerIter
					for i, id := range myReads {
						rec[ro+myCols[i]] = c.regs[id]
					}
				}
				wg.Done()
			}
		}()
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	hist := make(map[string]*OutcomeCount)
	remaining := opts.Iterations
	batchIdx := 0
	for remaining > 0 {
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		iters := batch
		if iters > remaining {
			iters = remaining
		}
		// Prepare: fresh memory and a fresh shuffle for this batch.
		tPrep := time.Now()
		for i := 0; i < iters*addrWords; i++ {
			arena[i] = 0
		}
		permFill(perm[:iters], opts.Seed, batchIdx)
		curIters = iters

		wg.Add(ct.numThreads)
		for _, ch := range starts {
			ch <- struct{}{}
		}
		wg.Wait()
		rep.Stages.Run += time.Since(tPrep)

		tCollect := time.Now()
		collectBatch(ct, arena, rec, iters, hist, rep)
		rep.Stages.Collect += time.Since(tCollect)
		rep.Iterations += int64(iters)
		remaining -= iters
		batchIdx++

		if opts.Progress != nil {
			opts.Progress(Progress{
				Test:       ct.test.Name,
				Iterations: rep.Iterations,
				Total:      int64(opts.Iterations),
				Outcomes:   len(hist),
				Elapsed:    time.Since(t0),
			})
		}
	}

	rep.Outcomes = make([]OutcomeCount, 0, len(hist))
	for _, oc := range hist {
		rep.Outcomes = append(rep.Outcomes, *oc)
	}
	return nil
}

// collectBatch decodes each completed iteration's read record and final
// memory into an observable outcome and folds it into the histogram.
func collectBatch(ct *compiled, arena, rec []int64, iters int, hist map[string]*OutcomeCount, rep *Report) {
	addrWords := ct.numAddrs * slotWords
	readsPerIter := len(ct.reads)
	numEvents := ct.test.NumEvents()
	for s := 0; s < iters; s++ {
		o := tsosim.Outcome{
			ReadsFrom:  make([]int, numEvents),
			FinalWrite: make([]int, ct.numAddrs),
		}
		for i := range o.ReadsFrom {
			o.ReadsFrom[i] = -1
		}
		ok := true
		for col, id := range ct.reads {
			w, valid := ct.decodeToken(rec[s*readsPerIter+col], ct.test.Events[id].Addr)
			if !valid {
				ok = false
				break
			}
			o.ReadsFrom[id] = w
		}
		if ok {
			for a := 0; a < ct.numAddrs; a++ {
				w, valid := ct.decodeToken(arena[s*addrWords+a*slotWords], a)
				if !valid {
					ok = false
					break
				}
				o.FinalWrite[a] = w
			}
		}
		if !ok {
			rep.Corrupt++
			continue
		}
		key := o.Key()
		if oc, seen := hist[key]; seen {
			oc.Count++
			continue
		}
		hist[key] = &OutcomeCount{Key: key, Outcome: o, Count: 1}
	}
}
