//go:build !race

package stress

// RaceEnabled reports whether this binary was built with the race
// detector. ModePlain is deliberately racy and is refused when it is on.
const RaceEnabled = false
