package stress_test

// Stress-executor benchmark rows for BENCH_synth.json: `make bench` runs
// this after the synthesis snapshot and the backend comparison, merging a
// "stress_cases" section — per-suite native-execution throughput
// (iterations/sec) with the model cross-check applied, so executor perf
// and soundness travel with the other perf numbers across PRs.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"memsynth/internal/harness"
	"memsynth/internal/litmus"
	"memsynth/internal/memmodel"
	"memsynth/internal/stress"
	"memsynth/internal/synth"
)

type stressCase struct {
	Model string `json:"model"`
	Bound int    `json:"bound"`
	Mode  string `json:"mode"`
	Seed  int64  `json:"seed"`

	Tests       int     `json:"tests"`
	Iterations  int64   `json:"iterations"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	ItersPerSec float64 `json:"iters_per_sec"`
	// Unexplained must be 0 in atomic mode; a nonzero value in the
	// committed snapshot is a soundness regression, not a perf number.
	Unexplained int64 `json:"unexplained"`
}

func runStressCase(t *testing.T, model string, bound, iters int, seed int64) stressCase {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	res := synth.Synthesize(m, synth.Options{MaxEvents: bound})
	tests := make([]*litmus.Test, 0, len(res.Union.Entries))
	for _, e := range res.Union.Entries {
		tests = append(tests, e.Test)
	}
	rep := harness.RunStressSuite(context.Background(), m, tests,
		stress.Options{Iterations: iters, Seed: seed}, nil)
	c := stressCase{
		Model: model, Bound: bound, Mode: rep.Mode, Seed: rep.Seed,
		Tests:       rep.TestsRun,
		Iterations:  rep.Iterations,
		ElapsedNS:   rep.Elapsed.Nanoseconds(),
		Unexplained: rep.Unexplained,
	}
	if rep.Elapsed > 0 {
		c.ItersPerSec = float64(rep.Iterations) / rep.Elapsed.Seconds()
	}
	if rep.Unexplained > 0 {
		t.Errorf("%s@%d: %d iterations observed model-forbidden outcomes", model, bound, rep.Unexplained)
	}
	t.Logf("%s@%d: %d tests, %d iterations in %v (%.0f iters/s)",
		model, bound, c.Tests, c.Iterations, time.Duration(c.ElapsedNS).Round(time.Millisecond), c.ItersPerSec)
	return c
}

// TestBenchStress merges native-execution rows into the BENCH_JSON file
// written by the synth package's snapshot (skipped when BENCH_JSON is
// unset, so a plain `go test` stays fast).
func TestBenchStress(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; run via `make bench`")
	}
	iters := 4096
	if os.Getenv("BENCH_SHORT") != "" {
		iters = 512
	}
	// A fixed seed keeps committed snapshots replayable and diffable.
	cases := []stressCase{
		runStressCase(t, "sc", 4, iters, 1),
		runStressCase(t, "tso", 4, iters, 1),
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("BENCH_JSON must exist (run the synth snapshot first): %v", err)
	}
	// RawMessage keeps the other sections byte-stable so the committed
	// snapshot diff is just the stress rows.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parse %s: %v", out, err)
	}
	rows, err := json.Marshal(cases)
	if err != nil {
		t.Fatal(err)
	}
	snap["stress_cases"] = rows
	merged, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	merged = append(merged, '\n')
	if err := os.WriteFile(out, merged, 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("merged %d stress cases into %s\n", len(cases), out)
}
