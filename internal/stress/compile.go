package stress

import (
	"fmt"
	"sync/atomic"

	"memsynth/internal/litmus"
)

// Arena layout: each (iteration, address) pair owns one cache line.
// Slots are int64 words at stride slotWords, so concurrent iterations
// never false-share and every access is a full-width aligned word (no
// tearing on any supported host).
const (
	cacheLine = 64
	slotWords = cacheLine / 8
)

// op is one compiled instruction: a closure over the executing thread's
// context. c.base is the word offset of the current iteration's slot
// block; ops add their address offset to it.
type op func(c *threadCtx)

// threadCtx is the per-thread execution state. The leading and trailing
// pads keep contexts of different threads on distinct cache lines; sink
// is the target of fence exchanges and spin is the start-skew accumulator
// (written so the skew loop cannot be optimized away).
type threadCtx struct {
	_     [slotWords]int64
	arena []int64
	regs  []int64
	base  int
	sink  int64
	spin  int64
	_     [slotWords]int64
}

// compiled is a litmus test lowered to per-thread op chains.
type compiled struct {
	test       *litmus.Test
	mode       Mode
	numThreads int
	numAddrs   int
	// reads lists read event IDs in event order; readCol maps an event ID
	// to its dense column in the per-iteration read record.
	reads   []int
	readCol []int
	threads [][]op
}

// opaqueZero returns v^v (always zero) through a call the compiler will
// not inline, so folding it into an address or store value creates a real
// data flow from the source read — the artificial-dependency idiom of
// hardware litmus harnesses, which keeps addr/data/ctrl chains intact in
// ModePlain where the compiler could otherwise break them.
//
//go:noinline
func opaqueZero(v int64) int64 { return v ^ v }

// depZero folds the values of the given source reads into an
// always-zero offset.
func depZero(c *threadCtx, srcs []int) int64 {
	var z int64
	for _, s := range srcs {
		z |= opaqueZero(c.regs[s])
	}
	return z
}

// token encodes write event w as the value it stores: event ID + 1, so 0
// remains the initial value and every write is identifiable from memory.
func token(w int) int64 { return int64(w + 1) }

// compile lowers t to per-thread closures for the given mode.
func compile(t *litmus.Test, mode Mode) (*compiled, error) {
	if t.NumEvents() == 0 {
		return nil, fmt.Errorf("stress: test %q has no events", t.Name)
	}
	ct := &compiled{
		test:       t,
		mode:       mode,
		numThreads: t.NumThreads(),
		numAddrs:   t.NumAddrs(),
		readCol:    make([]int, t.NumEvents()),
	}
	for i := range ct.readCol {
		ct.readCol[i] = -1
	}
	for _, e := range t.Events {
		if e.Kind == litmus.KRead {
			ct.readCol[e.ID] = len(ct.reads)
			ct.reads = append(ct.reads, e.ID)
		}
	}

	// Incoming dependency edges per event, split by how they attach:
	// address-like deps fold into the slot index, data deps into the
	// stored value, control deps guard the op behind an opaque branch.
	addrDeps := make([][]int, t.NumEvents())
	dataDeps := make([][]int, t.NumEvents())
	ctrlDeps := make([][]int, t.NumEvents())
	for _, d := range t.Deps {
		switch d.Type {
		case litmus.DepAddr:
			addrDeps[d.To] = append(addrDeps[d.To], d.From)
		case litmus.DepData:
			if t.Events[d.To].Kind == litmus.KWrite {
				dataDeps[d.To] = append(dataDeps[d.To], d.From)
			} else {
				addrDeps[d.To] = append(addrDeps[d.To], d.From)
			}
		case litmus.DepCtrl:
			ctrlDeps[d.To] = append(ctrlDeps[d.To], d.From)
		}
	}

	isRMWRead := make([]bool, t.NumEvents())
	isRMWWrite := make([]bool, t.NumEvents())
	for _, p := range t.RMW {
		isRMWRead[p[0]] = true
		isRMWWrite[p[1]] = true
	}

	ct.threads = make([][]op, ct.numThreads)
	for th := 0; th < ct.numThreads; th++ {
		var ops []op
		for _, id := range t.Thread(th) {
			e := t.Events[id]
			if isRMWWrite[id] {
				continue // emitted as part of the read half's swap
			}
			var f op
			switch {
			case e.Kind == litmus.KFence:
				f = fenceOp()
			case isRMWRead[id]:
				w, _ := t.RMWPartner(id)
				f = rmwOp(e, id, w, addrDeps[id], dataDeps[w])
			case e.Kind == litmus.KRead:
				f = readOp(mode, e, id, addrDeps[id])
			case e.Kind == litmus.KWrite:
				f = writeOp(mode, e, id, addrDeps[id], dataDeps[id])
			default:
				return nil, fmt.Errorf("stress: event %d has unknown kind %v", id, e.Kind)
			}
			if srcs := ctrlDeps[id]; len(srcs) > 0 {
				f = ctrlOp(srcs, f)
			}
			ops = append(ops, f)
		}
		ct.threads[th] = ops
	}
	return ct, nil
}

// atomicAccess reports whether the event compiles to a sync/atomic
// operation: always in ModeAtomic; in ModePlain only ordered accesses
// (acquire/release/SC/...) need atomics — Go has no other way to express
// ordering — while OPlain stays a plain load/store.
func atomicAccess(mode Mode, order litmus.Order) bool {
	return mode == ModeAtomic || order != litmus.OPlain
}

func fenceOp() op {
	// An atomic exchange is a full barrier on every Go target — exact for
	// mfence/sync/SC fences and conservative (stronger than required) for
	// the weak kinds. The sink is thread-private, so the fence orders
	// without communicating.
	return func(c *threadCtx) { atomic.SwapInt64(&c.sink, 0) }
}

func readOp(mode Mode, e litmus.Event, id int, aDeps []int) op {
	off := e.Addr * slotWords
	if atomicAccess(mode, e.Order) {
		if len(aDeps) == 0 {
			return func(c *threadCtx) { c.regs[id] = atomic.LoadInt64(&c.arena[c.base+off]) }
		}
		return func(c *threadCtx) {
			idx := c.base + off + int(depZero(c, aDeps))
			c.regs[id] = atomic.LoadInt64(&c.arena[idx])
		}
	}
	if len(aDeps) == 0 {
		return func(c *threadCtx) { c.regs[id] = c.arena[c.base+off] }
	}
	return func(c *threadCtx) {
		idx := c.base + off + int(depZero(c, aDeps))
		c.regs[id] = c.arena[idx]
	}
}

func writeOp(mode Mode, e litmus.Event, id int, aDeps, dDeps []int) op {
	off := e.Addr * slotWords
	tok := token(id)
	if atomicAccess(mode, e.Order) {
		if len(aDeps) == 0 && len(dDeps) == 0 {
			return func(c *threadCtx) { atomic.StoreInt64(&c.arena[c.base+off], tok) }
		}
		return func(c *threadCtx) {
			idx := c.base + off + int(depZero(c, aDeps))
			atomic.StoreInt64(&c.arena[idx], tok+depZero(c, dDeps))
		}
	}
	if len(aDeps) == 0 && len(dDeps) == 0 {
		return func(c *threadCtx) { c.arena[c.base+off] = tok }
	}
	return func(c *threadCtx) {
		idx := c.base + off + int(depZero(c, aDeps))
		c.arena[idx] = tok + depZero(c, dDeps)
	}
}

// rmwOp compiles an adjacent read/write RMW pair to one atomic exchange:
// the read observes the old value, the write installs its token, and no
// other store can slip between them — the bus-locked semantics every
// implemented model gives RMW pairs.
func rmwOp(e litmus.Event, rid, wid int, aDeps, dDeps []int) op {
	off := e.Addr * slotWords
	tok := token(wid)
	if len(aDeps) == 0 && len(dDeps) == 0 {
		return func(c *threadCtx) { c.regs[rid] = atomic.SwapInt64(&c.arena[c.base+off], tok) }
	}
	return func(c *threadCtx) {
		idx := c.base + off + int(depZero(c, aDeps))
		c.regs[rid] = atomic.SwapInt64(&c.arena[idx], tok+depZero(c, dDeps))
	}
}

// ctrlOp guards inner behind a branch on the source reads' values that
// always takes the true arm but that the compiler must treat as live.
func ctrlOp(srcs []int, inner op) op {
	return func(c *threadCtx) {
		if depZero(c, srcs) == 0 {
			inner(c)
		}
	}
}

// decodeToken maps an observed memory value back to its writing event:
// -1 for the initial value, the write's event ID otherwise. ok is false
// for values no write to addr can have produced.
func (ct *compiled) decodeToken(v int64, addr int) (w int, ok bool) {
	if v == 0 {
		return -1, true
	}
	w = int(v - 1)
	if w < 0 || w >= ct.test.NumEvents() {
		return 0, false
	}
	e := ct.test.Events[w]
	if e.Kind != litmus.KWrite || e.Addr != addr {
		return 0, false
	}
	return w, true
}
