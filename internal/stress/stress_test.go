package stress

import (
	"context"
	"errors"
	"testing"

	"memsynth/internal/litmus"
	"memsynth/internal/suites"
	"memsynth/internal/tsosim"
)

// sb is the store-buffering test: St x; Ld y || St y; Ld x.
func sb() *litmus.Test {
	return litmus.New("SB", [][]litmus.Op{
		{litmus.W(0), litmus.R(1)},
		{litmus.W(1), litmus.R(0)},
	})
}

func runOrFail(t *testing.T, lt *litmus.Test, opts Options) *Report {
	t.Helper()
	rep, err := Run(lt, opts)
	if err != nil {
		t.Fatalf("Run(%s): %v", lt.Name, err)
	}
	return rep
}

func TestAtomicOutcomesAreRealInterleavings(t *testing.T) {
	// Every outcome an atomic-mode run observes must be one the
	// exhaustive x86-TSO machine can produce: Go atomics are sequentially
	// consistent, and SC is a subset of TSO.
	lt := sb()
	rep := runOrFail(t, lt, Options{Iterations: 800, Batch: 128, Seed: 7})
	if len(rep.Outcomes) == 0 {
		t.Fatal("empty outcome histogram")
	}
	if rep.Iterations != 800 {
		t.Fatalf("Iterations = %d, want 800", rep.Iterations)
	}
	if rep.Corrupt != 0 {
		t.Fatalf("corrupt outcomes: %d", rep.Corrupt)
	}
	sim, err := tsosim.Run(lt)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range rep.Outcomes {
		if _, ok := sim[oc.Key]; !ok {
			t.Errorf("observed outcome %q not reachable on the TSO machine", oc.Key)
		}
	}
	var total int64
	for _, oc := range rep.Outcomes {
		total += oc.Count
	}
	if total != rep.Iterations {
		t.Fatalf("histogram counts sum to %d, want %d", total, rep.Iterations)
	}
}

func TestOwensSuiteDifferential(t *testing.T) {
	// The full seed baseline suite: atomic-mode observations must be a
	// subset of the simulator's exhaustive outcome set for every test.
	for _, bt := range suites.Owens() {
		sim, err := tsosim.Run(bt.Test)
		if err != nil {
			continue // non-TSO vocabulary
		}
		rep := runOrFail(t, bt.Test, Options{Iterations: 300, Batch: 64, Seed: 11})
		if len(rep.Outcomes) == 0 {
			t.Fatalf("%s: empty histogram", bt.Name)
		}
		for _, oc := range rep.Outcomes {
			if _, ok := sim[oc.Key]; !ok {
				t.Errorf("%s: observed %q not in simulator outcome set", bt.Name, oc.Key)
			}
		}
	}
}

func TestRMWObservesOldValue(t *testing.T) {
	// St x; then an RMW pair on x in another thread after a fence-free
	// race: the RMW read must observe either the initial value or the
	// first store, and the final write is always the RMW's.
	lt := litmus.New("rmw", [][]litmus.Op{
		{litmus.W(0)},
		{litmus.R(0), litmus.W(0)},
	}, litmus.WithRMW(1, 0))
	rep := runOrFail(t, lt, Options{Iterations: 400, Batch: 64, Seed: 3})
	sim, err := tsosim.Run(lt)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range rep.Outcomes {
		if _, ok := sim[oc.Key]; !ok {
			t.Fatalf("observed %q not in simulator outcome set", oc.Key)
		}
		if rf := oc.Outcome.ReadsFrom[1]; rf != -1 && rf != 0 {
			t.Fatalf("RMW read saw event %d, want -1 or 0", rf)
		}
		// Atomicity: if the RMW read observed the plain store, no other
		// write can slip between it and the RMW write — the final write
		// must be the RMW's.
		if oc.Outcome.ReadsFrom[1] == 0 && oc.Outcome.FinalWrite[0] != 2 {
			t.Fatalf("RMW pair split: read saw event 0 but final write is %d", oc.Outcome.FinalWrite[0])
		}
	}
}

func TestVocabularyCompiles(t *testing.T) {
	// Orders, fences, scopes, and dependency flavors all compile and run
	// without corrupt outcomes in both modes' shared (atomic) paths.
	lt := litmus.New("vocab", [][]litmus.Op{
		{litmus.W(0).WithOrder(litmus.ORelease), litmus.F(litmus.FSync), litmus.W(1)},
		{litmus.R(1).WithOrder(litmus.OAcquire), litmus.F(litmus.FSC), litmus.R(0).WithScope(litmus.ScopeSys)},
		{litmus.R(0), litmus.R(1)},
	},
		litmus.WithDep(1, 0, 1, litmus.DepCtrl),
		litmus.WithDep(2, 0, 1, litmus.DepAddr),
		litmus.WithGroups(0, 0, 1),
	)
	rep := runOrFail(t, lt, Options{Iterations: 200, Batch: 64, Seed: 5})
	if rep.Corrupt != 0 {
		t.Fatalf("corrupt outcomes: %d", rep.Corrupt)
	}
	if len(rep.Outcomes) == 0 {
		t.Fatal("empty histogram")
	}
}

func TestSeedRecordedAndShuffleDeterministic(t *testing.T) {
	rep := runOrFail(t, sb(), Options{Iterations: 64, Batch: 32})
	if rep.Seed == 0 {
		t.Fatal("zero-seed run did not record the chosen seed")
	}
	rep2 := runOrFail(t, sb(), Options{Iterations: 64, Batch: 32, Seed: 42})
	if rep2.Seed != 42 {
		t.Fatalf("Seed = %d, want 42", rep2.Seed)
	}
	// The shuffle order is a pure function of (seed, batch index).
	a := make([]int, 97)
	b := make([]int, 97)
	permFill(a, 42, 3)
	permFill(b, 42, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("perm not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	permFill(b, 43, 3)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestPlainModeRaceGate(t *testing.T) {
	if RaceEnabled {
		_, err := Run(sb(), Options{Mode: ModePlain, Iterations: 16})
		if !errors.Is(err, ErrPlainUnderRace) {
			t.Fatalf("plain mode under -race: got %v, want ErrPlainUnderRace", err)
		}
		return
	}
	rep := runOrFail(t, sb(), Options{Mode: ModePlain, Iterations: 400, Batch: 64, Seed: 9})
	if len(rep.Outcomes) == 0 {
		t.Fatal("plain mode produced no outcomes")
	}
	if rep.Mode != "plain" {
		t.Fatalf("Mode = %q", rep.Mode)
	}
}

func TestCancelledRunIsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, sb(), Options{Iterations: 1 << 20, Batch: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if rep.Iterations != 0 {
		t.Fatalf("cancelled-before-start run executed %d iterations", rep.Iterations)
	}
}

func TestMachineOutcomes(t *testing.T) {
	rep := runOrFail(t, sb(), Options{Iterations: 128, Batch: 64, Seed: 2})
	m := rep.MachineOutcomes()
	if len(m) != len(rep.Outcomes) {
		t.Fatalf("MachineOutcomes has %d entries, histogram %d", len(m), len(rep.Outcomes))
	}
	for k, o := range m {
		if o.Key() != k {
			t.Fatalf("outcome key mismatch: map key %q vs %q", k, o.Key())
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeAtomic}, {"atomic", ModeAtomic}, {"plain", ModePlain}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
}
