// Benchmarks regenerating the paper's evaluation (§6). Each table/figure
// has a bench that reports the figure's series as benchmark metrics, so
// `go test -bench=. -benchmem` reproduces the evaluation data:
//
//   - Fig. 13a/b/c (TSO counts per source, per axiom, runtime): BenchmarkFig13_TSO
//   - Fig. 16a/b/c (Power): BenchmarkFig16_Power
//   - Fig. 20a/b (SCC): BenchmarkFig20_SCC
//   - §6.4 (C/C++): BenchmarkC11 (plus BenchmarkHSA for the scoped model)
//   - Table 2 (relaxation applicability): BenchmarkTable2_Applicability
//   - Table 4 (Owens comparison): BenchmarkTable4_OwensVsSynthesized
//   - §2.1 baseline (diy): BenchmarkDiyBaseline
//
// The bench wall-clock time per bound is the paper's runtime series (the
// super-exponential growth of Figs. 13c/16c/20b). Paper-vs-measured values
// are recorded in EXPERIMENTS.md.
package memsynth_test

import (
	"fmt"
	"runtime"
	"testing"

	"memsynth"
)

// synthBench runs one synthesis per iteration and reports the suite sizes
// as metrics.
func synthBench(b *testing.B, modelName string, opts memsynth.Options) {
	model, err := memsynth.ModelByName(modelName)
	if err != nil {
		b.Fatal(err)
	}
	var res *memsynth.Result
	for i := 0; i < b.N; i++ {
		res = memsynth.Synthesize(model, opts)
	}
	b.ReportMetric(float64(len(res.Union.Entries)), "union-tests")
	for _, name := range res.AxiomNames() {
		b.ReportMetric(float64(len(res.PerAxiom[name].Entries)), name+"-tests")
	}
	b.ReportMetric(float64(res.Stats.Programs), "programs")
	b.ReportMetric(float64(res.Stats.Executions), "executions")
	if opts.CountForbidden {
		b.ReportMetric(float64(res.Stats.ForbiddenOutcomes), "forbidden-outcomes")
	}
}

// BenchmarkFig13_TSO regenerates Fig. 13: per-bound suite sizes for each
// TSO axiom and the union (13b), the all-forbidden-outcomes count vs the
// 15 forbidden Owens tests (13a), and the runtime (13c = ns/op).
func BenchmarkFig13_TSO(b *testing.B) {
	for bound := 2; bound <= 6; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "tso", memsynth.Options{
				MaxEvents:      bound,
				CountForbidden: bound <= 4,
			})
			b.ReportMetric(15, "owens-forbidden-tests")
		})
	}
}

// BenchmarkFig16_Power regenerates Fig. 16: Power per-axiom suite sizes and
// runtime per bound. The per-axiom spread (no_thin_air dominating due to
// dependency variety) and the much larger constant factor than TSO are the
// paper's headline observations.
func BenchmarkFig16_Power(b *testing.B) {
	for bound := 2; bound <= 5; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "power", memsynth.Options{
				MaxEvents:      bound,
				CountForbidden: bound <= 3,
			})
			b.ReportMetric(float64(len(cambridgeForbiddenCount())), "cambridge-forbidden-tests")
		})
	}
}

func cambridgeForbiddenCount() []memsynth.BaselineTest {
	var out []memsynth.BaselineTest
	for _, bt := range memsynth.CambridgeSuite() {
		if bt.Forbidden != nil {
			out = append(out, bt)
		}
	}
	return out
}

// BenchmarkFig20_SCC regenerates Fig. 20: SCC per-axiom suite sizes and
// runtime per bound (the paper's streamlined model synthesizes faster than
// Power at equal bounds while offering more synchronization vocabulary).
func BenchmarkFig20_SCC(b *testing.B) {
	for bound := 2; bound <= 4; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "scc", memsynth.Options{
				MaxEvents:      bound,
				CountForbidden: bound <= 3,
			})
		})
	}
}

// BenchmarkC11 regenerates the §6.4 C/C++ study at laptop bounds.
func BenchmarkC11(b *testing.B) {
	for bound := 2; bound <= 4; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "c11", memsynth.Options{MaxEvents: bound})
		})
	}
}

// BenchmarkHSA covers the scoped model (the paper's HSA/OpenCL rows of
// Table 2), including the Demote Scope relaxation.
func BenchmarkHSA(b *testing.B) {
	b.Run("bound=3", func(b *testing.B) {
		synthBench(b, "hsa", memsynth.Options{MaxEvents: 3})
	})
	b.Run("bound=4/threads=2", func(b *testing.B) {
		synthBench(b, "hsa", memsynth.Options{MaxEvents: 4, MaxThreads: 2})
	})
}

// BenchmarkSC covers the simplest model end of Table 2.
func BenchmarkSC(b *testing.B) {
	for bound := 2; bound <= 5; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "sc", memsynth.Options{MaxEvents: bound})
		})
	}
}

// BenchmarkARMv7 covers the ARMv7 variant of the Power formulation.
func BenchmarkARMv7(b *testing.B) {
	for bound := 2; bound <= 4; bound++ {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			synthBench(b, "armv7", memsynth.Options{MaxEvents: bound})
		})
	}
}

// BenchmarkTable2_Applicability regenerates Table 2 (which relaxations
// apply to which model).
func BenchmarkTable2_Applicability(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = 0
		for _, m := range memsynth.Models() {
			rows += len(memsynth.RelaxationTags(m))
		}
	}
	b.ReportMetric(float64(rows), "applicable-relaxation-cells")
}

// BenchmarkTable4_OwensVsSynthesized regenerates Table 4: classify every
// forbidden Owens test as minimal ("Both") or containing a synthesized
// minimal subtest ("Owens only").
func BenchmarkTable4_OwensVsSynthesized(b *testing.B) {
	tso, err := memsynth.ModelByName("tso")
	if err != nil {
		b.Fatal(err)
	}
	var both, containsMinimal, unresolved int
	for i := 0; i < b.N; i++ {
		res := memsynth.Synthesize(tso, memsynth.Options{MaxEvents: 6})
		both, containsMinimal, unresolved = 0, 0, 0
		for _, bt := range memsynth.OwensSuite() {
			if bt.Forbidden == nil {
				continue
			}
			if len(memsynth.CheckMinimal(tso, bt.Forbidden).MinimalFor()) > 0 {
				both++
				continue
			}
			found := false
			for _, e := range res.Union.Entries {
				if memsynth.Contains(bt.Forbidden, e.Exec) {
					found = true
					break
				}
			}
			if found {
				containsMinimal++
			} else {
				unresolved++
			}
		}
	}
	b.ReportMetric(float64(both), "owens-minimal")
	b.ReportMetric(float64(containsMinimal), "owens-contains-minimal")
	b.ReportMetric(float64(unresolved), "owens-unresolved")
}

// BenchmarkDiyBaseline contrasts diy-style cycle generation (§2.1) with
// synthesis: the diy suite contains redundant (non-minimal) tests that the
// minimality criterion filters.
func BenchmarkDiyBaseline(b *testing.B) {
	tso, err := memsynth.ModelByName("tso")
	if err != nil {
		b.Fatal(err)
	}
	var distinct, forbidden, minimalCount int
	for i := 0; i < b.N; i++ {
		witnesses := memsynth.DiyGenerate(memsynth.DiyTSOAlphabet(), 3, 4)
		seen := map[string]bool{}
		distinct, forbidden, minimalCount = 0, 0, 0
		for _, x := range witnesses {
			key := memsynth.CanonicalKey(x)
			if seen[key] {
				continue
			}
			seen[key] = true
			distinct++
			v := memsynth.CheckMinimal(tso, x)
			if len(v.ViolatedAxioms) > 0 {
				forbidden++
				if len(v.MinimalFor()) > 0 {
					minimalCount++
				}
			}
		}
	}
	b.ReportMetric(float64(distinct), "diy-distinct")
	b.ReportMetric(float64(forbidden), "diy-forbidden")
	b.ReportMetric(float64(minimalCount), "diy-minimal")
}

// BenchmarkFaultDetection runs the synthesized suite against the five
// fault-injected x86-TSO machines (the §1 motivation, end to end) and
// reports how many bugs the suite catches.
func BenchmarkFaultDetection(b *testing.B) {
	tso, err := memsynth.ModelByName("tso")
	if err != nil {
		b.Fatal(err)
	}
	res := memsynth.Synthesize(tso, memsynth.Options{MaxEvents: 6})
	var tests []*memsynth.Test
	for _, e := range res.Union.Entries {
		tests = append(tests, e.Test)
	}
	b.ResetTimer()
	var detected, falsePositives int
	for i := 0; i < b.N; i++ {
		detected, falsePositives = 0, 0
		for _, row := range memsynth.FaultDetectionMatrix(tso, tests) {
			if row.Fault.String() == "none" {
				if row.Detected {
					falsePositives++
				}
				continue
			}
			if row.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "faults-detected")
	b.ReportMetric(float64(len(memsynth.AllMachineFaults())), "faults-seeded")
	b.ReportMetric(float64(falsePositives), "false-positives")
}

// BenchmarkRandomBaseline measures the §2.1 random-generation baseline:
// minimal-pattern coverage per 1000 random tests.
func BenchmarkRandomBaseline(b *testing.B) {
	tso, err := memsynth.ModelByName("tso")
	if err != nil {
		b.Fatal(err)
	}
	res := memsynth.Synthesize(tso, memsynth.Options{MaxEvents: 4})
	target := map[string]bool{}
	for _, e := range res.Union.Entries {
		target[e.Key] = true
	}
	b.ResetTimer()
	var covered int
	for i := 0; i < b.N; i++ {
		g := memsynth.NewRandomGenerator(tso, memsynth.RandomOptions{MaxEvents: 4}, int64(i+1))
		seen := map[string]bool{}
		for j := 0; j < 1000; j++ {
			lt := g.Test()
			w := memsynth.ForbiddenWitness(tso, lt)
			if w == nil {
				continue
			}
			if v := memsynth.CheckMinimal(tso, w); len(v.MinimalFor()) > 0 {
				if key := memsynth.CanonicalKey(w); target[key] {
					seen[key] = true
				}
			}
		}
		covered = len(seen)
	}
	b.ReportMetric(float64(covered), "patterns-covered")
	b.ReportMetric(float64(len(target)), "patterns-total")
}

// --- ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationPruning measures the two always-sound generator prunes
// (leading/trailing fences; isolated addresses). Suites are identical
// either way (TestPruningPreservesSuites); only the explored program count
// changes.
func BenchmarkAblationPruning(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts memsynth.Options
	}{
		{"pruned", memsynth.Options{MaxEvents: 5}},
		{"unpruned", memsynth.Options{MaxEvents: 5, KeepTrivialFences: true, KeepIsolatedAddrs: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *memsynth.Result
			for i := 0; i < b.N; i++ {
				res = mustSynth(b, "tso", tc.opts)
			}
			b.ReportMetric(float64(res.Stats.ProgramsRaw), "programs-raw")
			b.ReportMetric(float64(len(res.Union.Entries)), "union-tests")
		})
	}
}

// BenchmarkAblationParallel measures the worker fan-out extension
// (sequential vs parallel synthesis of the same suite).
func BenchmarkAblationParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustSynth(b, "scc", memsynth.Options{MaxEvents: 4, Workers: workers})
			}
		})
	}
}

// BenchmarkParallelScaling measures the sharded engine's wall-clock
// scaling on a TSO bound-5 run: Workers=1 vs Workers=NumCPU. The suites
// are byte-identical for every worker count (dedupe keeps the
// generation-order-first representative of each symmetry class; see
// TestParallelByteIdenticalSuites in internal/synth), so ns/op is the
// only thing that changes. On a single-core host the two sub-benchmarks
// coincide; on N cores the NumCPU run's speedup is the engine's
// parallel efficiency.
func BenchmarkParallelScaling(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *memsynth.Result
			for i := 0; i < b.N; i++ {
				res = mustSynth(b, "tso", memsynth.Options{MaxEvents: 5, Workers: workers})
			}
			b.ReportMetric(float64(len(res.Union.Entries)), "union-tests")
			b.ReportMetric(float64(res.Stats.Programs), "programs")
		})
	}
}

// BenchmarkAblationSymmetryReduction measures how much work canonical
// program dedupe saves: the ratio of raw to distinct programs is the
// redundancy that Mador-Haim-style symmetry reduction removes before any
// execution is enumerated (paper §5.1).
func BenchmarkAblationSymmetryReduction(b *testing.B) {
	var res *memsynth.Result
	for i := 0; i < b.N; i++ {
		res = mustSynth(b, "scc", memsynth.Options{MaxEvents: 4})
	}
	b.ReportMetric(float64(res.Stats.ProgramsRaw), "programs-raw")
	b.ReportMetric(float64(res.Stats.Programs), "programs-distinct")
}

func mustSynth(b *testing.B, name string, opts memsynth.Options) *memsynth.Result {
	b.Helper()
	m, err := memsynth.ModelByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return memsynth.Synthesize(m, opts)
}

// --- microbenchmarks for the substrates ---

func BenchmarkOutcomeEnumeration(b *testing.B) {
	tso, _ := memsynth.ModelByName("tso")
	iriw := memsynth.NewTest("IRIW", [][]memsynth.Op{
		{memsynth.W(0)}, {memsynth.W(1)},
		{memsynth.R(0), memsynth.R(1)},
		{memsynth.R(1), memsynth.R(0)},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memsynth.Outcomes(tso, iriw)
	}
}

func BenchmarkMinimalityCheck(b *testing.B) {
	scc, _ := memsynth.ModelByName("scc")
	mp := memsynth.NewTest("MP", [][]memsynth.Op{
		{memsynth.W(0), memsynth.Wrel(1)},
		{memsynth.Racq(1), memsynth.R(0)},
	})
	var witness *memsynth.Execution
	for _, o := range memsynth.Outcomes(scc, mp) {
		if !o.Valid {
			witness = o.Exec
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memsynth.CheckMinimal(scc, witness)
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	tso, _ := memsynth.ModelByName("tso")
	iriw := memsynth.NewTest("IRIW", [][]memsynth.Op{
		{memsynth.W(0)}, {memsynth.W(1)},
		{memsynth.R(0), memsynth.R(1)},
		{memsynth.R(1), memsynth.R(0)},
	})
	outcome := memsynth.Outcomes(tso, iriw)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memsynth.CanonicalKey(outcome.Exec)
	}
}

func BenchmarkTSOMachine(b *testing.B) {
	sb := memsynth.NewTest("SB+mfences", [][]memsynth.Op{
		{memsynth.W(0), memsynth.F(memsynth.FMFence), memsynth.R(1)},
		{memsynth.W(1), memsynth.F(memsynth.FMFence), memsynth.R(0)},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memsynth.RunTSOMachine(sb); err != nil {
			b.Fatal(err)
		}
	}
}
